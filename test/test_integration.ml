(* Cross-module properties on randomly generated dataflow graphs.

   Tree-shaped multirate CSDF graphs are consistent by construction, which
   makes them a good random workload: every analysis in the stack must
   agree with every other on them. *)

open Tpdf_core
open Tpdf_param
open Tpdf_util
module Csdf = Tpdf_csdf
module Sched = Tpdf_sched
module Platform = Tpdf_platform.Platform

(* ------------------------------------------------------------------ *)
(* Random tree-shaped CSDF graphs                                      *)
(* ------------------------------------------------------------------ *)

type spec = {
  seed : int;
  n_actors : int; (* 2..6 *)
}

let arb_spec =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "seed=%d n=%d" s.seed s.n_actors)
    QCheck.Gen.(
      let* seed = int_bound 100000 in
      let* n_actors = int_range 2 6 in
      return { seed; n_actors })

let build_tree spec =
  let rng = Prng.create spec.seed in
  let g = Csdf.Graph.create () in
  let phases = Array.init spec.n_actors (fun _ -> Prng.int_in rng 1 3) in
  for i = 0 to spec.n_actors - 1 do
    Csdf.Graph.add_actor g (Printf.sprintf "a%d" i) ~phases:phases.(i)
  done;
  for i = 1 to spec.n_actors - 1 do
    let parent = Prng.int rng i in
    let rates k =
      (* at least one strictly positive entry per sequence *)
      let seq = Array.init phases.(k) (fun _ -> Prng.int_in rng 0 3) in
      if Array.for_all (( = ) 0) seq then seq.(0) <- 1 + Prng.int rng 3;
      Array.map Poly.of_int seq
    in
    let init = Prng.int rng 3 in
    let src, dst = if Prng.bool rng then (parent, i) else (i, parent) in
    ignore
      (Csdf.Graph.add_channel g
         ~src:(Printf.sprintf "a%d" src)
         ~dst:(Printf.sprintf "a%d" dst)
         ~prod:(rates src) ~cons:(rates dst) ~init ())
  done;
  g

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_balance =
  QCheck.Test.make ~name:"repetition vector solves the balance equations"
    ~count:200 arb_spec (fun spec ->
      let g = build_tree spec in
      let rep = Csdf.Repetition.solve g in
      let conc = Csdf.Concrete.make g Valuation.empty in
      List.for_all
        (fun (e : (string, Csdf.Graph.channel) Tpdf_graph.Digraph.edge) ->
          let ch = Csdf.Concrete.chan conc e.id in
          let produced =
            Csdf.Concrete.cumulative ch.Csdf.Concrete.prod
              (Csdf.Concrete.q conc e.src)
          in
          let consumed =
            Csdf.Concrete.cumulative ch.Csdf.Concrete.cons
              (Csdf.Concrete.q conc e.dst)
          in
          ignore rep;
          produced = consumed)
        (Csdf.Graph.channels g))

let prop_schedule_returns_to_initial =
  QCheck.Test.make ~name:"every policy completes trees and restores state"
    ~count:150 arb_spec (fun spec ->
      let g = build_tree spec in
      let conc = Csdf.Concrete.make g Valuation.empty in
      List.for_all
        (fun policy ->
          match Csdf.Schedule.run ~policy conc with
          | Csdf.Schedule.Complete t -> t.Csdf.Schedule.returned_to_initial
          | Csdf.Schedule.Deadlock _ -> false)
        [ Csdf.Schedule.Eager; Csdf.Schedule.Late_first; Csdf.Schedule.Min_buffer ])

(* Min_buffer is a greedy heuristic, so no policy dominates another in
   general; but every policy's capacity is bounded by the total traffic of
   one iteration (tokens produced plus initial tokens, per channel). *)
let prop_buffers_bounded_by_traffic =
  QCheck.Test.make ~name:"capacities never exceed one iteration's traffic"
    ~count:150 arb_spec (fun spec ->
      let g = build_tree spec in
      let conc = Csdf.Concrete.make g Valuation.empty in
      List.for_all
        (fun policy ->
          let report = Csdf.Buffers.analyze ~policy conc in
          List.for_all
            (fun (e : (string, Csdf.Graph.channel) Tpdf_graph.Digraph.edge) ->
              let ch = Csdf.Concrete.chan conc e.id in
              let traffic =
                e.label.init
                + Csdf.Concrete.cumulative ch.Csdf.Concrete.prod
                    (Csdf.Concrete.q conc e.src)
              in
              match List.assoc_opt e.id report.Csdf.Buffers.per_channel with
              | Some cap -> cap <= traffic
              | None -> false)
            (Csdf.Graph.channels g))
        [ Csdf.Schedule.Eager; Csdf.Schedule.Late_first; Csdf.Schedule.Min_buffer ])

let prop_buffers_cover_initial_tokens =
  QCheck.Test.make ~name:"per-channel capacity covers initial tokens"
    ~count:150 arb_spec (fun spec ->
      let g = build_tree spec in
      let conc = Csdf.Concrete.make g Valuation.empty in
      let report = Csdf.Buffers.analyze conc in
      List.for_all
        (fun (e : (string, Csdf.Graph.channel) Tpdf_graph.Digraph.edge) ->
          match List.assoc_opt e.id report.Csdf.Buffers.per_channel with
          | Some cap -> cap >= e.label.init
          | None -> false)
        (Csdf.Graph.channels g))

let prop_canonical_period_sound =
  QCheck.Test.make ~name:"canonical period has Σq nodes and sorts"
    ~count:150 arb_spec (fun spec ->
      let g = build_tree spec in
      let conc = Csdf.Concrete.make g Valuation.empty in
      let period = Sched.Canonical_period.build conc in
      let total_q =
        List.fold_left
          (fun acc (_, n) -> acc + n)
          0
          (Csdf.Concrete.q_vector conc)
      in
      Sched.Canonical_period.node_count period = total_q
      && List.length (Sched.Canonical_period.topological period) = total_q)

let prop_schedule_consistent_with_period =
  QCheck.Test.make ~name:"list schedule respects all dependencies" ~count:100
    arb_spec (fun spec ->
      let g = build_tree spec in
      let tg = Graph.of_csdf g in
      let conc = Csdf.Concrete.make g Valuation.empty in
      let period = Sched.Canonical_period.build conc in
      let s =
        Sched.List_scheduler.run ~graph:tg period (Platform.uniform 3)
      in
      List.for_all
        (fun (p, succ) ->
          let ap = Sched.List_scheduler.assignment_of s p in
          let as_ = Sched.List_scheduler.assignment_of s succ in
          ap.Sched.List_scheduler.finish_ms
          <= as_.Sched.List_scheduler.start_ms +. 1e-9)
        (Sched.Canonical_period.deps period))

let prop_engine_matches_q =
  QCheck.Test.make ~name:"discrete-event engine fires exactly q per iteration"
    ~count:100 arb_spec (fun spec ->
      let g = build_tree spec in
      let tg = Graph.of_csdf g in
      let conc = Csdf.Concrete.make g Valuation.empty in
      let eng =
        Tpdf_sim.Engine.create ~graph:tg ~valuation:Valuation.empty ~default:0 ()
      in
      let stats = Tpdf_sim.Engine.run ~iterations:2 eng in
      List.for_all
        (fun (a, n) -> n = 2 * Csdf.Concrete.q conc a)
        stats.Tpdf_sim.Engine.firings)

let prop_mcr_bounds_schedule =
  QCheck.Test.make
    ~name:"MCR lower-bounds the list-scheduled iteration period" ~count:15
    arb_spec (fun spec ->
      let spec = { spec with n_actors = min spec.n_actors 4 } in
      let g = build_tree spec in
      let tg = Graph.of_csdf g in
      let conc = Csdf.Concrete.make g Valuation.empty in
      let mcr = Sched.Mcr.iteration_period_ms (Sched.Mcr.build conc) in
      (* The bound only holds for the *steady-state* period: during the
         pipeline-fill transient the one-iteration marginal consumes
         initial-token slack and can dip below the MCR (e.g. 24 ms/iter
         for three iterations against an MCR of 25 on the seed-90
         counterexample), so measure after the schedule settles. *)
      let sched =
        Sched.Throughput.steady_period_ms ~graph:tg conc (Platform.uniform 4)
      in
      (* The MCR ignores communication costs — allow latency-scale
         slack. *)
      sched >= mcr -. 0.05)

let prop_trees_live =
  QCheck.Test.make ~name:"tree graphs are always live" ~count:150 arb_spec
    (fun spec ->
      let g = build_tree spec in
      Liveness.is_live (Graph.of_csdf g) Valuation.empty)

let prop_serial_preserves_analysis =
  QCheck.Test.make ~name:"serialization preserves the repetition vector"
    ~count:100 arb_spec (fun spec ->
      let g = Graph.of_csdf (build_tree spec) in
      match Serial.of_string (Serial.to_string g) with
      | Error _ -> false
      | Ok g' ->
          let q gr =
            List.map
              (fun (a, p) -> (a, Poly.to_string p))
              (Analysis.repetition gr).Csdf.Repetition.q
          in
          q g = q g')

let prop_cumulative_symbolic_agrees =
  QCheck.Test.make
    ~name:"cumulative_symbolic agrees with the concrete cumulative" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 4) (int_range 0 3))
        (int_range 0 20))
    (fun (rates, n) ->
      let seq = Array.of_list (List.map Poly.of_int rates) in
      match Analysis.cumulative_symbolic seq (Frac.of_int n) with
      | None -> false (* constant counts are always expressible *)
      | Some f ->
          Frac.equal f
            (Frac.of_int
               (Csdf.Concrete.cumulative (Array.of_list rates) n)))

(* Scenario buffers never exceed the full-topology buffers, for the
   fig2 graph over a range of parameter values. *)
let prop_scenario_buffers_smaller =
  QCheck.Test.make ~name:"mode scenarios never need more buffers" ~count:50
    QCheck.(int_range 1 12)
    (fun p ->
      let { Examples.graph = g; _ } = Examples.fig2 () in
      let v = Valuation.of_list [ ("p", p) ] in
      let full = (Buffers.csdf_equivalent g v).Csdf.Buffers.total in
      List.for_all
        (fun scenario ->
          (Buffers.analyze g v ~scenario).Csdf.Buffers.total <= full)
        [ [ ("F", "take_e6") ]; [ ("F", "take_e7") ] ])

(* Theorem 1 tie-back: the computed repetition vector annihilates the
   topology matrix. *)
let prop_gamma_r_zero =
  QCheck.Test.make ~name:"Gamma . r = 0 (Theorem 1)" ~count:150 arb_spec
    (fun spec ->
      let g = build_tree spec in
      let rep = Csdf.Repetition.solve g in
      Csdf.Repetition.verify_against_matrix g rep)

(* Random *cyclic* consistent graphs: add a balanced chord to a tree.  The
   chord a -> b with prod q_b / cons q_a is balanced for any pair. *)
let build_cyclic spec =
  let g = build_tree spec in
  let rep = Csdf.Repetition.solve g in
  let actors = Csdf.Graph.actors g in
  let rng = Prng.create (spec.seed + 77) in
  let a = List.nth actors (Prng.int rng (List.length actors)) in
  let b = List.nth actors (Prng.int rng (List.length actors)) in
  let q actor =
    Tpdf_param.Poly.eval_int (fun _ -> 1) (Csdf.Repetition.q_of rep actor)
  in
  if a <> b then begin
    (* enough initial tokens to avoid changing liveness half the time,
       fewer the other half to exercise deadlock detection *)
    let need = q a * q b in
    let init = if Prng.bool rng then need else Prng.int rng (max 1 need) in
    ignore
      (Csdf.Graph.add_channel g ~src:a ~dst:b
         ~prod:(Array.make (Csdf.Graph.phases g a) (Tpdf_param.Poly.of_int (q b)))
         ~cons:(Array.make (Csdf.Graph.phases g b) (Tpdf_param.Poly.of_int (q a)))
         ~init ())
  end;
  g

let prop_cyclic_still_consistent =
  QCheck.Test.make ~name:"balanced chords preserve consistency" ~count:100
    arb_spec (fun spec ->
      Csdf.Repetition.is_consistent (build_cyclic spec))

(* §III-C clustering theorem: the whole graph is live iff every nontrivial
   SCC has a local schedule (given consistency and a DAG condensation). *)
let prop_local_liveness_matches_global =
  QCheck.Test.make ~name:"per-cycle local liveness = global liveness"
    ~count:100 arb_spec (fun spec ->
      let g = build_cyclic spec in
      let tg = Graph.of_csdf g in
      let report = Liveness.check tg Valuation.empty in
      let locally_live =
        List.for_all
          (fun c -> c.Liveness.local_schedule <> None)
          report.Liveness.cycles
      in
      locally_live = report.Liveness.live)

(* The .tpdf parser must never raise on arbitrary input. *)
let prop_parser_total =
  QCheck.Test.make ~name:"Serial.of_string is total" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 60) Gen.printable)
    (fun s ->
      match Serial.of_string s with Ok _ | Error _ -> true)

let prop_parser_total_structured =
  QCheck.Test.make ~name:"Serial.of_string is total on near-miss inputs"
    ~count:500
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 25)
           (oneofl
              [ "tpdf"; "{"; "}"; "kernel"; "control"; "channel"; "ctrl";
                "modes"; "A"; "B"; "="; "["; "]"; "("; ")"; "->"; ";"; ",";
                "1"; "p"; "init"; "priority"; "clock"; "phases"; "kind";
                "inputs"; "*" ])))
    (fun toks ->
      match Serial.of_string (String.concat " " toks) with
      | Ok _ | Error _ -> true)

(* The OFDM buffer formulas hold across the whole parameter lattice. *)
let prop_fig8_formula_everywhere =
  QCheck.Test.make ~name:"Fig. 8 closed forms hold on the parameter lattice"
    ~count:60
    QCheck.(triple (int_range 1 64) (int_range 1 6) (int_range 1 8))
    (fun (beta, n_exp, l) ->
      let n = 64 * n_exp in
      let t = (Tpdf_apps.Ofdm_app.tpdf_buffers ~beta ~n ~l).Csdf.Buffers.total in
      let c = (Tpdf_apps.Ofdm_app.csdf_buffers ~beta ~n ~l).Csdf.Buffers.total in
      t = Tpdf_apps.Ofdm_app.tpdf_buffer_formula ~beta ~n ~l
      && c = Tpdf_apps.Ofdm_app.csdf_buffer_formula ~beta ~n ~l)

(* ------------------------------------------------------------------ *)
(* Random moded TPDF graphs (generalized Fig. 2 / Fig. 7 pattern)       *)
(* ------------------------------------------------------------------ *)

(* SRC -> DUP -> {branch_i} -> TRAN -> SNK with a control actor steering
   DUP's outputs and TRAN's inputs; branch i runs c_i times per iteration. *)
let build_moded ~seed ~branches =
  let rng = Prng.create seed in
  let g = Graph.create () in
  Graph.add_kernel g "SRC";
  Graph.add_kernel g ~kind:Graph.Select_duplicate "DUP";
  Graph.add_kernel g ~kind:Graph.Transaction "TRAN";
  Graph.add_kernel g "SNK";
  Graph.add_control g "CTL";
  ignore
    (Graph.add_channel g ~src:"SRC" ~dst:"DUP"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ());
  ignore
    (Graph.add_channel g ~src:"SRC" ~dst:"CTL"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ());
  let branch_edges =
    List.init branches (fun i ->
        let name = Printf.sprintf "b%d" i in
        Graph.add_kernel g name;
        let c = Prng.int_in rng 1 3 in
        let din =
          Graph.add_channel g ~src:"DUP" ~dst:name
            ~prod:(Csdf.Graph.const_rates [ c ])
            ~cons:(Csdf.Graph.const_rates [ 1 ])
            ()
        in
        let dout =
          Graph.add_channel g ~src:name ~dst:"TRAN"
            ~prod:(Csdf.Graph.const_rates [ 1 ])
            ~cons:(Csdf.Graph.const_rates [ c ])
            ()
        in
        (i, name, din, dout))
  in
  ignore
    (Graph.add_channel g ~src:"TRAN" ~dst:"SNK"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ());
  ignore
    (Graph.add_control_channel g ~src:"CTL" ~dst:"DUP"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ());
  ignore
    (Graph.add_control_channel g ~src:"CTL" ~dst:"TRAN"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ());
  Graph.set_modes g "DUP"
    (List.map
       (fun (i, _, din, _) ->
         Mode.make
           ~outputs:(Mode.Output_subset [ din ])
           (Printf.sprintf "m%d" i))
       branch_edges);
  Graph.set_modes g "TRAN"
    (List.map
       (fun (i, _, _, dout) ->
         Mode.make
           ~inputs:(Mode.Input_subset [ dout ])
           (Printf.sprintf "m%d" i))
       branch_edges);
  (g, branch_edges)

let arb_moded =
  QCheck.make
    ~print:(fun (seed, branches) -> Printf.sprintf "seed=%d branches=%d" seed branches)
    QCheck.Gen.(pair (int_bound 10000) (int_range 2 4))

let prop_moded_analyses =
  QCheck.Test.make ~name:"random moded graphs pass all static analyses"
    ~count:60 arb_moded (fun (seed, branches) ->
      let g, _ = build_moded ~seed ~branches in
      let b = Analysis.check_boundedness g ~samples:[ Valuation.empty ] in
      b.Analysis.bounded)

let prop_moded_scenarios =
  QCheck.Test.make
    ~name:"every branch scenario fits inside the full-topology buffers"
    ~count:60 arb_moded (fun (seed, branches) ->
      let g, edges = build_moded ~seed ~branches in
      let full = (Buffers.csdf_equivalent g Valuation.empty).Csdf.Buffers.total in
      List.for_all
        (fun (i, _, _, _) ->
          let mode = Printf.sprintf "m%d" i in
          let s = [ ("DUP", mode); ("TRAN", mode) ] in
          (Buffers.analyze g Valuation.empty ~scenario:s).Csdf.Buffers.total
          <= full)
        edges)

let prop_moded_runtime =
  QCheck.Test.make
    ~name:"random moded graphs execute each scenario to completion" ~count:40
    arb_moded (fun (seed, branches) ->
      let g, edges = build_moded ~seed ~branches in
      List.for_all
        (fun (i, name, _, _) ->
          let mode = Printf.sprintf "m%d" i in
          let behaviors =
            [ ("CTL", Tpdf_sim.Behavior.emit_mode (fun _ -> mode)) ]
          in
          let eng =
            Tpdf_sim.Engine.create ~graph:g ~valuation:Valuation.empty
              ~behaviors ~default:0 ()
          in
          let targets =
            List.filter_map
              (fun (_, other, _, _) ->
                if other = name then None else Some (other, 0))
              edges
          in
          let stats = Tpdf_sim.Engine.run ~iterations:2 ~targets eng in
          List.assoc name stats.Tpdf_sim.Engine.firings > 0
          && List.assoc "SNK" stats.Tpdf_sim.Engine.firings = 2)
        edges)

let () =
  Alcotest.run "integration"
    [
      ( "random-graphs",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_balance;
            prop_schedule_returns_to_initial;
            prop_buffers_bounded_by_traffic;
            prop_buffers_cover_initial_tokens;
            prop_canonical_period_sound;
            prop_schedule_consistent_with_period;
            prop_engine_matches_q;
            prop_trees_live;
            prop_serial_preserves_analysis;
            prop_mcr_bounds_schedule;
          ] );
      ( "analyses",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cumulative_symbolic_agrees;
            prop_scenario_buffers_smaller;
            prop_fig8_formula_everywhere;
          ] );
      ( "theorems",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_gamma_r_zero;
            prop_cyclic_still_consistent;
            prop_local_liveness_matches_global;
            prop_parser_total;
            prop_parser_total_structured;
          ] );
      ( "moded-graphs",
        List.map QCheck_alcotest.to_alcotest
          [ prop_moded_analyses; prop_moded_scenarios; prop_moded_runtime ] );
    ]
