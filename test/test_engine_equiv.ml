(* Equivalence suite for the compiled engine (lib/sim/engine.ml) against
   [Reference_engine], a byte-for-byte snapshot of the seed engine.  The
   optimized engine must be observationally identical: same outcome
   constructor, same stats (firings, occupancy, drops, end time), the same
   trace record-for-record, and the same tpdf_obs event stream — for every
   shipped graph under every mode scenario, and for a seeded chaos run
   through the fault supervisor.  Also property-tests the binary event
   heap against a reference sorted list. *)

module Csdf = Tpdf_csdf
module Graph = Tpdf_core.Graph
module Serial = Tpdf_core.Serial
module Valuation = Tpdf_param.Valuation
module Sim = Tpdf_sim
module Engine = Tpdf_sim.Engine
module Behavior = Tpdf_sim.Behavior
module Heap = Tpdf_sim.Event_heap
module Obs = Tpdf_obs.Obs
module Metrics = Tpdf_obs.Metrics
module Fault = Tpdf_fault

(* ------------------------------------------------------------------ *)
(* Event heap vs reference sorted list                                 *)
(* ------------------------------------------------------------------ *)

(* Reference model: a list kept sorted by (time, seq) with FIFO ties. *)
module Model = struct
  type t = { mutable entries : (float * int * int) list; mutable seq : int }

  let create () = { entries = []; seq = 0 }

  let add m time v =
    let e = (time, m.seq, v) in
    m.seq <- m.seq + 1;
    let rec ins = function
      | [] -> [ e ]
      | ((t', s', _) as hd) :: tl ->
          if time < t' || (time = t' && m.seq - 1 < s') then e :: hd :: tl
          else hd :: ins tl
    in
    m.entries <- ins m.entries

  let pop m =
    match m.entries with
    | [] -> None
    | (t, _, v) :: tl ->
        m.entries <- tl;
        Some (t, v)
end

(* Ops use a coarse time grid so equal timestamps are frequent and the
   FIFO tie-break is actually exercised. *)
let gen_ops =
  QCheck.Gen.(
    list_size (int_range 0 200)
      (frequency
         [ (3, map (fun t -> `Add (float_of_int t /. 2.0)) (int_range 0 6));
           (2, return `Pop) ]))

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function `Add t -> Printf.sprintf "add %.1f" t | `Pop -> "pop")
           ops))
    gen_ops

let prop_heap_matches_model =
  QCheck.Test.make ~name:"heap pops = sorted-list pops" ~count:300 arb_ops
    (fun ops ->
      let h = Heap.create () in
      let m = Model.create () in
      let k = ref 0 in
      List.for_all
        (function
          | `Add t ->
              Heap.add h t !k;
              Model.add m t !k;
              incr k;
              Heap.length h = List.length m.Model.entries
          | `Pop -> Heap.pop h = Model.pop m)
        ops
      && begin
           (* drain both fully: total order must agree to the end *)
           let rec drain () =
             let a = Heap.pop h and b = Model.pop m in
             a = b && (a = None || drain ())
           in
           drain ()
         end)

let prop_heap_fifo_ties =
  QCheck.Test.make ~name:"equal timestamps pop in insertion order" ~count:100
    QCheck.(int_range 1 300)
    (fun n ->
      let h = Heap.create () in
      for i = 0 to n - 1 do
        Heap.add h 1.0 i
      done;
      let rec check i =
        match Heap.pop h with
        | None -> i = n
        | Some (t, v) -> t = 1.0 && v = i && check (i + 1)
      in
      check 0)

(* ------------------------------------------------------------------ *)
(* Outcome comparison helpers                                          *)
(* ------------------------------------------------------------------ *)

(* The two engines declare distinct (structurally identical) record types;
   map both to tuples so polymorphic equality applies. *)
let tup_new (r : Engine.firing_record) =
  (r.Engine.actor, r.Engine.index, r.Engine.phase, r.Engine.mode,
   r.Engine.start_ms, r.Engine.finish_ms)

let tup_ref (r : Reference_engine.firing_record) =
  ( r.Reference_engine.actor,
    r.Reference_engine.index,
    r.Reference_engine.phase,
    r.Reference_engine.mode,
    r.Reference_engine.start_ms,
    r.Reference_engine.finish_ms )

let stats_new (s : Engine.stats) =
  ( s.Engine.end_ms,
    s.Engine.firings,
    s.Engine.max_occupancy,
    s.Engine.dropped,
    List.map tup_new s.Engine.trace )

let stats_ref (s : Reference_engine.stats) =
  ( s.Reference_engine.end_ms,
    s.Reference_engine.firings,
    s.Reference_engine.max_occupancy,
    s.Reference_engine.dropped,
    List.map tup_ref s.Reference_engine.trace )

type canonical =
  | C_completed of
      (float * (string * int) list * (int * int) list * (int * int) list
      * (string * int * int * string * float * float) list)
  | C_stalled of
      (float * (string * int * int) list * (int * int) list)
      * (float * (string * int) list * (int * int) list * (int * int) list
        * (string * int * int * string * float * float) list)
  | C_budget of
      int
      * float
      * (float * (string * int) list * (int * int) list * (int * int) list
        * (string * int * int * string * float * float) list)
  | C_error of string

let canon_new = function
  | Engine.Completed s -> C_completed (stats_new s)
  | Engine.Stalled (x, s) ->
      C_stalled
        ( (x.Engine.at_ms, x.Engine.blocked_actors, x.Engine.channel_states),
          stats_new s )
  | Engine.Budget_exceeded { steps; at_ms; partial } ->
      C_budget (steps, at_ms, stats_new partial)

let canon_ref = function
  | Reference_engine.Completed s -> C_completed (stats_ref s)
  | Reference_engine.Stalled (x, s) ->
      C_stalled
        ( ( x.Reference_engine.at_ms,
            x.Reference_engine.blocked_actors,
            x.Reference_engine.channel_states ),
          stats_ref s )
  | Reference_engine.Budget_exceeded { steps; at_ms; partial } ->
      C_budget (steps, at_ms, stats_ref partial)

let describe = function
  | C_completed (e, f, _, _, tr) ->
      Printf.sprintf "Completed end=%.3f firings=%s trace=%d" e
        (String.concat ","
           (List.map (fun (a, n) -> Printf.sprintf "%s:%d" a n) f))
        (List.length tr)
  | C_stalled ((at, blocked, _), _) ->
      Printf.sprintf "Stalled at=%.3f blocked=%s" at
        (String.concat ","
           (List.map (fun (a, g, w) -> Printf.sprintf "%s:%d/%d" a g w) blocked))
  | C_budget (steps, at, _) -> Printf.sprintf "Budget steps=%d at=%.3f" steps at
  | C_error m -> "Error: " ^ m

(* ------------------------------------------------------------------ *)
(* Every shipped graph x every mode scenario                           *)
(* ------------------------------------------------------------------ *)

let graphs_dir =
  let d = "../graphs" in
  if Sys.file_exists d then d else "graphs"

(* Assign every declared parameter the same small value on both sides;
   the particular value is irrelevant to equivalence. *)
let valuation_for g =
  List.fold_left (fun v p -> Valuation.add p 2 v) Valuation.empty
    (Graph.parameters g)

let run_one_engine ~create ~run_outcome ~canon g v scenario =
  let ctrl = Sim.Reconfigure.scenario_control_behavior g scenario in
  let behaviors =
    List.filter_map
      (fun a -> if Graph.is_control g a then Some (a, ctrl) else None)
      (Graph.actors g)
  in
  let targets =
    List.map (fun a -> (a, 0)) (Sim.Reconfigure.starved_actors g scenario)
  in
  let obs = Obs.create () in
  let outcome =
    match create ~graph:g ~valuation:v ~behaviors ~obs ~default:0 () with
    | e -> (
        match run_outcome ~iterations:2 ~targets ~max_events:20_000 e with
        | o -> canon o
        | exception Engine.Error err -> C_error (Engine.error_message err)
        | exception Reference_engine.Error err ->
            C_error (Reference_engine.error_message err)
        | exception Failure m -> C_error ("failure: " ^ m))
    | exception Invalid_argument m -> C_error ("invalid: " ^ m)
  in
  (outcome, Obs.events obs)

let check_file file () =
  let path = Filename.concat graphs_dir file in
  match Serial.load path with
  | Error m -> Alcotest.fail (file ^ ": " ^ m)
  | Ok g ->
      let v = valuation_for g in
      let scenarios = Sim.Reconfigure.mode_scenarios g in
      List.iteri
        (fun i scenario ->
          let label = Printf.sprintf "%s scenario %d" file i in
          let o_new, ev_new =
            run_one_engine
              ~create:(fun ~graph ~valuation ~behaviors ~obs ~default () ->
                Engine.create ~graph ~valuation ~behaviors ~obs ~default ())
              ~run_outcome:(fun ~iterations ~targets ~max_events e ->
                Engine.run_outcome ~iterations ~targets ~max_events e)
              ~canon:canon_new g v scenario
          in
          let o_ref, ev_ref =
            run_one_engine
              ~create:(fun ~graph ~valuation ~behaviors ~obs ~default () ->
                Reference_engine.create ~graph ~valuation ~behaviors ~obs
                  ~default ())
              ~run_outcome:(fun ~iterations ~targets ~max_events e ->
                Reference_engine.run_outcome ~iterations ~targets ~max_events e)
              ~canon:canon_ref g v scenario
          in
          if o_new <> o_ref then
            Alcotest.fail
              (Printf.sprintf "%s: outcome diverged\n  new: %s\n  ref: %s"
                 label (describe o_new) (describe o_ref));
          Alcotest.(check int)
            (label ^ " obs event count")
            (List.length ev_ref) (List.length ev_new);
          if ev_new <> ev_ref then
            Alcotest.fail (label ^ ": tpdf_obs event streams diverged"))
        scenarios

let graph_files =
  let files = Array.to_list (Sys.readdir graphs_dir) in
  List.sort compare
    (List.filter (fun f -> Filename.check_suffix f ".tpdf") files)

(* ------------------------------------------------------------------ *)
(* Seeded chaos run through the fault supervisor                       *)
(* ------------------------------------------------------------------ *)

(* Golden numbers captured by running this exact construction against the
   seed engine (commit 00dbc53).  The supervisor, retry/skip machinery and
   seeded fault plan all sit on top of the engine, so agreement here pins
   the full stack: scheduling order, deadline arithmetic, obs streams. *)
let test_chaos_golden () =
  let g, _ = Tpdf_apps.Ofdm_app.tpdf_graph () in
  let beta = 2 and n = 8 in
  let v = Tpdf_apps.Ofdm_app.valuation ~beta ~n ~l:1 in
  let behaviors =
    List.filter_map
      (fun a ->
        if Graph.is_control g a then None
        else
          Some
            ( a,
              Behavior.fill 0 ~duration_ms:(fun _ ->
                  Tpdf_apps.Ofdm_app.model_cost_ms ~beta ~n a) ))
      (Graph.actors g)
  in
  let policy =
    Fault.Policy.make
      ~deadlines_ms:[ ("QAM", 0.05) ]
      ~degrade_after:2
      ~fallbacks:(Fault.Chaos.default_fallbacks g) ()
  in
  let specs =
    [
      Fault.Fault.spec ~target:"QAM" ~prob:0.6 (Fault.Fault.Overrun 8.0);
      Fault.Fault.spec ~target:"FFT" ~prob:0.3 (Fault.Fault.Fail 4);
      Fault.Fault.spec ~prob:0.15 (Fault.Fault.Jitter 0.02);
    ]
  in
  let obs = Obs.create () in
  let s =
    Fault.Chaos.run ~graph:g ~seed:42 ~specs ~policy ~iterations:6 ~obs
      ~behaviors ~valuation:v ()
  in
  let open Fault.Supervisor in
  Alcotest.(check int) "iterations_run" 6 s.iterations_run;
  Alcotest.(check bool) "total_end_ms" true
    (Float.abs (s.total_end_ms -. 6.300679) < 1e-5);
  Alcotest.(check int) "retries" 2 s.retries;
  Alcotest.(check int) "skips" 1 s.skips;
  Alcotest.(check int) "corrupted" 0 s.corrupted;
  Alcotest.(check int) "ctrl_lost" 0 s.ctrl_lost;
  Alcotest.(check int) "deadline_misses" 2 s.deadline_misses;
  Alcotest.(check int) "deadline_hits" 2 s.deadline_hits;
  Alcotest.(check (list (pair string string)))
    "degrades"
    [ ("DUP", "qpsk"); ("TRAN", "qpsk") ]
    s.degrades;
  Alcotest.(check (option string)) "unrecovered" None s.unrecovered;
  Alcotest.(check int) "obs events" 248 (Obs.event_count obs)

(* ------------------------------------------------------------------ *)
(* Sequential vs pooled execution                                      *)
(* ------------------------------------------------------------------ *)

module Pool = Tpdf_par.Pool

(* The pool contract is byte-identical observable behaviour: same
   outcome, stats, traces and obs event streams as the sequential
   engine, at any domain count.  Checked for every shipped graph under
   every mode scenario, and for the full chaos stack. *)
let par_domain_counts =
  let base = [ 1; 2; 4 ] in
  match Sys.getenv_opt "TPDF_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 && not (List.mem d base) -> base @ [ d ]
      | _ -> base)
  | None -> base

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let check_file_par domains file () =
  let path = Filename.concat graphs_dir file in
  match Serial.load path with
  | Error m -> Alcotest.fail (file ^ ": " ^ m)
  | Ok g ->
      let v = valuation_for g in
      let scenarios = Sim.Reconfigure.mode_scenarios g in
      with_pool ~domains @@ fun pool ->
      List.iteri
        (fun i scenario ->
          let label =
            Printf.sprintf "%s scenario %d (domains=%d)" file i domains
          in
          let run ?pool () =
            run_one_engine
              ~create:(fun ~graph ~valuation ~behaviors ~obs ~default () ->
                Engine.create ~graph ~valuation ~behaviors ~obs ?pool ~default
                  ())
              ~run_outcome:(fun ~iterations ~targets ~max_events e ->
                Engine.run_outcome ~iterations ~targets ~max_events e)
              ~canon:canon_new g v scenario
          in
          let o_seq, ev_seq = run () in
          let o_par, ev_par = run ~pool () in
          if o_par <> o_seq then
            Alcotest.fail
              (Printf.sprintf "%s: outcome diverged\n  par: %s\n  seq: %s"
                 label (describe o_par) (describe o_seq));
          Alcotest.(check int)
            (label ^ " obs event count")
            (List.length ev_seq) (List.length ev_par);
          if ev_par <> ev_seq then
            Alcotest.fail (label ^ ": tpdf_obs event streams diverged"))
        scenarios

(* Chaos through the supervisor: retries, skips, deadline watchdog and
   mode fallback all run above the pooled engine; the summary (including
   per-iteration stats) and the obs stream must not move by a byte. *)
let chaos_summary ?pool () =
  let g, _ = Tpdf_apps.Ofdm_app.tpdf_graph () in
  let beta = 2 and n = 8 in
  let v = Tpdf_apps.Ofdm_app.valuation ~beta ~n ~l:1 in
  let behaviors =
    List.filter_map
      (fun a ->
        if Graph.is_control g a then None
        else
          Some
            ( a,
              Behavior.fill 0 ~duration_ms:(fun _ ->
                  Tpdf_apps.Ofdm_app.model_cost_ms ~beta ~n a) ))
      (Graph.actors g)
  in
  let policy =
    Fault.Policy.make
      ~deadlines_ms:[ ("QAM", 0.05) ]
      ~degrade_after:2
      ~fallbacks:(Fault.Chaos.default_fallbacks g) ()
  in
  let specs =
    [
      Fault.Fault.spec ~target:"QAM" ~prob:0.6 (Fault.Fault.Overrun 8.0);
      Fault.Fault.spec ~target:"FFT" ~prob:0.3 (Fault.Fault.Fail 4);
      Fault.Fault.spec ~prob:0.15 (Fault.Fault.Jitter 0.02);
    ]
  in
  let obs = Obs.create () in
  let s =
    Fault.Chaos.run ~graph:g ~seed:42 ~specs ~policy ~iterations:6 ~obs
      ~behaviors ?pool ~valuation:v ()
  in
  (s, Obs.events obs)

let test_chaos_par domains () =
  with_pool ~domains @@ fun pool ->
  let s_seq, ev_seq = chaos_summary () in
  let s_par, ev_par = chaos_summary ~pool () in
  Alcotest.(check bool)
    (Printf.sprintf "chaos summary identical (domains=%d)" domains)
    true (s_par = s_seq);
  Alcotest.(check int)
    (Printf.sprintf "chaos obs event count (domains=%d)" domains)
    (List.length ev_seq) (List.length ev_par);
  if ev_par <> ev_seq then
    Alcotest.fail
      (Printf.sprintf "chaos obs streams diverged (domains=%d)" domains)

let par_equiv_tests =
  List.concat_map
    (fun domains ->
      List.map
        (fun f ->
          Alcotest.test_case
            (Printf.sprintf "%s domains=%d" f domains)
            `Quick (check_file_par domains f))
        graph_files
      @ [
          Alcotest.test_case
            (Printf.sprintf "chaos domains=%d" domains)
            `Quick (test_chaos_par domains);
        ])
    par_domain_counts

(* ------------------------------------------------------------------ *)
(* until_ms: the event at the cap stays queued                         *)
(* ------------------------------------------------------------------ *)

(* The seed engine popped the first event past [until_ms] and threw it
   away (its actor stayed busy forever, its tokens were lost).  The
   compiled engine peeks instead: a capped run can be resumed and still
   complete.  This is the one sanctioned behaviour change of the rewrite. *)
let test_until_ms_keeps_event () =
  let one = Csdf.Graph.const_rates [ 1 ] in
  let g = Graph.create () in
  Graph.add_kernel g "A";
  Graph.add_kernel g "B";
  ignore (Graph.add_channel g ~src:"A" ~dst:"B" ~prod:one ~cons:one ());
  let e = Engine.create ~graph:g ~valuation:Valuation.empty ~default:0 () in
  (match Engine.run_outcome ~iterations:3 ~until_ms:1.5 e with
  | Engine.Stalled (s, partial) ->
      Alcotest.(check bool) "cut at the cap" true (s.Engine.at_ms <= 1.5);
      Alcotest.(check bool) "some progress" true
        (List.assoc "A" partial.Engine.firings >= 1)
  | _ -> Alcotest.fail "expected a Stalled outcome at the cap");
  (* resuming must find the retained events and finish the iteration *)
  match Engine.run_outcome ~iterations:3 e with
  | Engine.Completed stats ->
      Alcotest.(check (list (pair string int)))
        "all firings completed"
        [ ("A", 3); ("B", 3) ]
        stats.Engine.firings
  | o ->
      Alcotest.fail
        ("resumed run did not complete: " ^ describe (canon_new o))

(* ------------------------------------------------------------------ *)
(* Compiled static-schedule backend vs event interpreter               *)
(* ------------------------------------------------------------------ *)

(* The compiled backend replays the event heap's pop order with flat
   round FIFOs; everything observable — outcome constructor, stats,
   traces, obs event streams — must be byte-identical, for every shipped
   graph under every mode scenario (including the clocked ones, where
   the backend declines to engage and must fall through transparently). *)
let check_file_compiled file () =
  let path = Filename.concat graphs_dir file in
  match Serial.load path with
  | Error m -> Alcotest.fail (file ^ ": " ^ m)
  | Ok g ->
      let v = valuation_for g in
      let scenarios = Sim.Reconfigure.mode_scenarios g in
      List.iteri
        (fun i scenario ->
          let label = Printf.sprintf "%s scenario %d (compiled)" file i in
          let run backend =
            run_one_engine
              ~create:(fun ~graph ~valuation ~behaviors ~obs ~default () ->
                Engine.create ~graph ~valuation ~behaviors ~obs ~default ())
              ~run_outcome:(fun ~iterations ~targets ~max_events e ->
                Engine.run_outcome ~backend ~iterations ~targets ~max_events e)
              ~canon:canon_new g v scenario
          in
          let o_evt, ev_evt = run `Event in
          let o_cmp, ev_cmp = run `Compiled in
          if o_cmp <> o_evt then
            Alcotest.fail
              (Printf.sprintf "%s: outcome diverged\n  compiled: %s\n  event: %s"
                 label (describe o_cmp) (describe o_evt));
          Alcotest.(check int)
            (label ^ " obs event count")
            (List.length ev_evt) (List.length ev_cmp);
          if ev_cmp <> ev_evt then
            Alcotest.fail (label ^ ": tpdf_obs event streams diverged"))
        scenarios

(* With observability disabled the compiled backend takes its fused
   static fast path (wake-list walk, hand-inlined fire/complete), which
   the obs-enabled variant above never reaches.  Pin the full outcome —
   stats record, trace included — along that path too, for every graph
   under every scenario. *)
let check_file_compiled_noobs file () =
  let path = Filename.concat graphs_dir file in
  match Serial.load path with
  | Error m -> Alcotest.fail (file ^ ": " ^ m)
  | Ok g ->
      let v = valuation_for g in
      let scenarios = Sim.Reconfigure.mode_scenarios g in
      List.iteri
        (fun i scenario ->
          let label =
            Printf.sprintf "%s scenario %d (compiled, no obs)" file i
          in
          let run backend =
            let ctrl = Sim.Reconfigure.scenario_control_behavior g scenario in
            let behaviors =
              List.filter_map
                (fun a ->
                  if Graph.is_control g a then Some (a, ctrl) else None)
                (Graph.actors g)
            in
            let targets =
              List.map
                (fun a -> (a, 0))
                (Sim.Reconfigure.starved_actors g scenario)
            in
            match Engine.create ~graph:g ~valuation:v ~behaviors ~default:0 ()
            with
            | e -> (
                match
                  Engine.run_outcome ~backend ~iterations:2 ~targets
                    ~max_events:20_000 e
                with
                | o -> canon_new o
                | exception Engine.Error err ->
                    C_error (Engine.error_message err)
                | exception Failure m -> C_error ("failure: " ^ m))
            | exception Invalid_argument m -> C_error ("invalid: " ^ m)
          in
          let o_evt = run `Event in
          let o_cmp = run `Compiled in
          if o_cmp <> o_evt then
            Alcotest.fail
              (Printf.sprintf "%s: outcome diverged\n  compiled: %s\n  event: %s"
                 label (describe o_cmp) (describe o_evt)))
        scenarios

(* A chain with uniform durations: the backend must actually engage
   (visible through the engine.backend gauges), and the snapshot taken
   after the run — including the heap's seq counter — must equal the
   event engine's image bit for bit. *)
let chain_graph n =
  let one = Csdf.Graph.const_rates [ 1 ] in
  let g = Graph.create () in
  for i = 0 to n - 1 do
    Graph.add_kernel g (Printf.sprintf "a%d" i)
  done;
  for i = 0 to n - 2 do
    ignore
      (Graph.add_channel g
         ~src:(Printf.sprintf "a%d" i)
         ~dst:(Printf.sprintf "a%d" (i + 1))
         ~prod:one ~cons:one ())
  done;
  g

let test_compiled_engages () =
  let backend_gauge backend =
    let g = chain_graph 4 in
    let obs = Obs.create () in
    let e = Engine.create ~graph:g ~valuation:Valuation.empty ~obs ~default:0 () in
    (match Engine.run_outcome ~backend ~iterations:2 e with
    | Engine.Completed _ -> ()
    | o -> Alcotest.fail ("chain did not complete: " ^ describe (canon_new o)));
    Metrics.gauge (Obs.metrics obs) "engine.backend.compiled"
  in
  Alcotest.(check (option (float 0.0)))
    "compiled gauge under `Compiled" (Some 1.0) (backend_gauge `Compiled);
  Alcotest.(check (option (float 0.0)))
    "compiled gauge under `Event" (Some 0.0) (backend_gauge `Event)

let test_compiled_snapshot_identical () =
  let image backend =
    let g = chain_graph 5 in
    let e = Engine.create ~graph:g ~valuation:Valuation.empty ~default:0 () in
    (match Engine.run_outcome ~backend ~iterations:3 e with
    | Engine.Completed _ -> ()
    | o -> Alcotest.fail ("chain did not complete: " ^ describe (canon_new o)));
    Engine.snapshot ~encode:string_of_int e
  in
  if image `Compiled <> image `Event then
    Alcotest.fail "snapshot images diverged between backends"

(* Snapshot under one backend, restore, continue under the other: the
   restored engine carries pending events, so `Compiled declines and the
   continuation is identical either way. *)
let test_compiled_restore_roundtrip () =
  let g = chain_graph 4 in
  let continue_with backend =
    let e = Engine.create ~graph:g ~valuation:Valuation.empty ~default:0 () in
    (match Engine.run_outcome ~backend:`Compiled ~iterations:3 ~until_ms:1.5 e with
    | Engine.Stalled _ -> ()
    | o -> Alcotest.fail ("expected a capped stall: " ^ describe (canon_new o)));
    let snap = Engine.snapshot ~encode:string_of_int e in
    let e' =
      Engine.restore ~graph:g ~valuation:Valuation.empty ~default:0
        ~decode:int_of_string snap
    in
    canon_new (Engine.run_outcome ~backend ~iterations:3 e')
  in
  let c = continue_with `Compiled and v = continue_with `Event in
  (match c with
  | C_completed (_, firings, _, _, _) ->
      Alcotest.(check (list (pair string int)))
        "restored run completed all firings"
        [ ("a0", 3); ("a1", 3); ("a2", 3); ("a3", 3) ]
        firings
  | o -> Alcotest.fail ("restored run did not complete: " ^ describe o));
  if c <> v then Alcotest.fail "restored continuations diverged across backends"

(* Non-uniform durations: the backend engages, then the uniformity guard
   trips mid-run and hands the pending rounds back to the heap.  The
   deoptimised run must still match the interpreter byte for byte. *)
let test_compiled_deopt_nonuniform () =
  let g = chain_graph 4 in
  let behaviors =
    List.mapi
      (fun i a ->
        (a, Behavior.fill 0 ~duration_ms:(fun _ -> 1.0 +. (0.25 *. float_of_int i))))
      [ "a0"; "a1"; "a2"; "a3" ]
  in
  let run backend =
    let obs = Obs.create () in
    let e =
      Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~obs
        ~default:0 ()
    in
    (canon_new (Engine.run_outcome ~backend ~iterations:4 e), Obs.events obs)
  in
  let o_cmp, ev_cmp = run `Compiled and o_evt, ev_evt = run `Event in
  if o_cmp <> o_evt then
    Alcotest.fail
      (Printf.sprintf "deopt run diverged\n  compiled: %s\n  event: %s"
         (describe o_cmp) (describe o_evt));
  if ev_cmp <> ev_evt then Alcotest.fail "deopt obs streams diverged"

(* until_ms under the compiled backend: the entry at the cap is handed
   back to the heap with its original (time, seq), so a later run — on
   either backend — resumes and completes exactly like the interpreter. *)
let test_compiled_until_ms_resumes () =
  let g = chain_graph 2 in
  let e = Engine.create ~graph:g ~valuation:Valuation.empty ~default:0 () in
  (match Engine.run_outcome ~backend:`Compiled ~iterations:3 ~until_ms:1.5 e with
  | Engine.Stalled (s, partial) ->
      Alcotest.(check bool) "cut at the cap" true (s.Engine.at_ms <= 1.5);
      Alcotest.(check bool)
        "some progress" true
        (List.assoc "a0" partial.Engine.firings >= 1);
      Alcotest.(check bool)
        "events retained" true
        (Engine.pending_events e > 0)
  | o -> Alcotest.fail ("expected a capped stall: " ^ describe (canon_new o)));
  match Engine.run_outcome ~backend:`Compiled ~iterations:3 e with
  | Engine.Completed stats ->
      Alcotest.(check (list (pair string int)))
        "all firings completed"
        [ ("a0", 3); ("a1", 3) ]
        stats.Engine.firings
  | o ->
      Alcotest.fail ("resumed run did not complete: " ^ describe (canon_new o))

(* Chaos through the supervisor with backend:`Compiled — restores,
   retries, kills and non-uniform model costs all force fallback paths;
   the summary and obs stream must not move. *)
let test_compiled_chaos () =
  let run backend =
    let g, _ = Tpdf_apps.Ofdm_app.tpdf_graph () in
    let beta = 2 and n = 8 in
    let v = Tpdf_apps.Ofdm_app.valuation ~beta ~n ~l:1 in
    let behaviors =
      List.filter_map
        (fun a ->
          if Graph.is_control g a then None
          else
            Some
              ( a,
                Behavior.fill 0 ~duration_ms:(fun _ ->
                    Tpdf_apps.Ofdm_app.model_cost_ms ~beta ~n a) ))
        (Graph.actors g)
    in
    let policy =
      Fault.Policy.make
        ~deadlines_ms:[ ("QAM", 0.05) ]
        ~degrade_after:2
        ~fallbacks:(Fault.Chaos.default_fallbacks g) ()
    in
    let specs =
      [
        Fault.Fault.spec ~target:"QAM" ~prob:0.6 (Fault.Fault.Overrun 8.0);
        Fault.Fault.spec ~target:"FFT" ~prob:0.3 (Fault.Fault.Fail 4);
        Fault.Fault.spec ~prob:0.15 (Fault.Fault.Jitter 0.02);
      ]
    in
    let obs = Obs.create () in
    let s =
      Fault.Chaos.run ~graph:g ~seed:42 ~specs ~backend ~policy ~iterations:6
        ~obs ~behaviors ~valuation:v ()
    in
    (s, Obs.events obs)
  in
  let s_cmp, ev_cmp = run `Compiled and s_evt, ev_evt = run `Event in
  Alcotest.(check bool) "chaos summaries identical" true (s_cmp = s_evt);
  if ev_cmp <> ev_evt then Alcotest.fail "chaos obs streams diverged"

(* Firing counts of a completed compiled run equal the static plan:
   iterations × repetition vector (Compiled.firing_counts), on a
   multirate chain of random length and random iteration count. *)
let prop_compiled_firing_counts =
  QCheck.Test.make ~name:"compiled firing counts = iterations x q" ~count:50
    QCheck.(pair (int_range 2 6) (int_range 1 4))
    (fun (n, iterations) ->
      let g = Graph.create () in
      for i = 0 to n - 1 do
        Graph.add_kernel g (Printf.sprintf "a%d" i)
      done;
      for i = 0 to n - 2 do
        (* alternate 2:1 and 1:2 so the repetition vector is not flat *)
        let prod = Csdf.Graph.const_rates [ 1 + (i mod 2) ] in
        let cons = Csdf.Graph.const_rates [ 1 + ((i + 1) mod 2) ] in
        ignore
          (Graph.add_channel g
             ~src:(Printf.sprintf "a%d" i)
             ~dst:(Printf.sprintf "a%d" (i + 1))
             ~prod ~cons ())
      done;
      let e = Engine.create ~graph:g ~valuation:Valuation.empty ~default:0 () in
      match Engine.run_outcome ~backend:`Compiled ~iterations e with
      | Engine.Completed stats ->
          let conc =
            Csdf.Concrete.make (Graph.skeleton g) Valuation.empty
          in
          let plan =
            Sim.Compiled.firing_counts conc ~iterations (Graph.actors g)
          in
          List.sort compare stats.Engine.firings = List.sort compare plan
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Event heap growth and edge paths                                    *)
(* ------------------------------------------------------------------ *)

let test_heap_empty_edges () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check (option (float 0.0))) "peek_time empty" None (Heap.peek_time h);
  Alcotest.(check bool) "pop empty" true (Heap.pop h = None);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length empty" 0 (Heap.length h);
  Alcotest.(check int) "next_seq starts at 0" 0 (Heap.next_seq h)

(* Push far past any plausible initial capacity so the backing array
   doubles several times, then verify the full pop order. *)
let test_heap_growth () =
  let h = Heap.create () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    (* decreasing times: every add sifts to the root, worst case *)
    Heap.add h (float_of_int (n - i)) i
  done;
  Alcotest.(check int) "length after growth" n (Heap.length h);
  let rec check k =
    match Heap.pop h with
    | None -> Alcotest.(check int) "popped all" n k
    | Some (t, v) ->
        if t <> float_of_int (k + 1) || v <> n - 1 - k then
          Alcotest.fail
            (Printf.sprintf "pop %d: got (%g, %d), want (%d, %d)" k t v (k + 1)
               (n - 1 - k));
        check (k + 1)
  in
  check 0

let test_heap_load_out_of_order () =
  let h = Heap.create () in
  (* deliberately scrambled: ties on time resolved by seq *)
  Heap.load h ~next_seq:10
    [ (2.0, 7, "d"); (1.0, 3, "b"); (1.0, 1, "a"); (2.0, 4, "c") ];
  Alcotest.(check int) "next_seq taken from load" 10 (Heap.next_seq h);
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list string))
    "pop order is (time, seq)"
    [ "a"; "b"; "c"; "d" ]
    (List.rev !order);
  (* seq validation: an entry at/past next_seq is rejected *)
  (match Heap.load h ~next_seq:5 [ (1.0, 5, "x") ] with
  | () -> Alcotest.fail "load accepted seq >= next_seq"
  | exception Invalid_argument _ -> ());
  (* load with [] is a pure seq sync on an empty heap *)
  Heap.load h ~next_seq:42 [];
  Alcotest.(check int) "seq sync" 42 (Heap.next_seq h);
  Alcotest.(check bool) "still empty" true (Heap.is_empty h)

let compiled_equiv_tests =
  List.map
    (fun f -> Alcotest.test_case (f ^ " compiled") `Quick (check_file_compiled f))
    graph_files
  @ List.map
      (fun f ->
        Alcotest.test_case (f ^ " compiled no-obs") `Quick
          (check_file_compiled_noobs f))
      graph_files
  @ [
      Alcotest.test_case "backend gauge" `Quick test_compiled_engages;
      Alcotest.test_case "snapshot identical" `Quick
        test_compiled_snapshot_identical;
      Alcotest.test_case "restore roundtrip" `Quick
        test_compiled_restore_roundtrip;
      Alcotest.test_case "deopt on non-uniform durations" `Quick
        test_compiled_deopt_nonuniform;
      Alcotest.test_case "until_ms resumes" `Quick
        test_compiled_until_ms_resumes;
      Alcotest.test_case "chaos via supervisor" `Quick test_compiled_chaos;
      QCheck_alcotest.to_alcotest prop_compiled_firing_counts;
    ]

let () =
  Alcotest.run "engine_equiv"
    [
      ( "heap",
        [
          QCheck_alcotest.to_alcotest prop_heap_matches_model;
          QCheck_alcotest.to_alcotest prop_heap_fifo_ties;
          Alcotest.test_case "empty edges" `Quick test_heap_empty_edges;
          Alcotest.test_case "growth past capacity" `Quick test_heap_growth;
          Alcotest.test_case "load out of order" `Quick
            test_heap_load_out_of_order;
        ] );
      ( "scenarios",
        List.map
          (fun f -> Alcotest.test_case f `Quick (check_file f))
          graph_files );
      ("chaos", [ Alcotest.test_case "golden summary" `Quick test_chaos_golden ]);
      ("par-equiv", par_equiv_tests);
      ("compiled-equiv", compiled_equiv_tests);
      ( "until_ms",
        [
          Alcotest.test_case "event kept at cap" `Quick
            test_until_ms_keeps_event;
        ] );
    ]
