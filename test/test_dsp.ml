open Tpdf_dsp
open Tpdf_util

let approx_complex eps a b =
  abs_float (a.Complex.re -. b.Complex.re) < eps
  && abs_float (a.Complex.im -. b.Complex.im) < eps

let carray_approx eps a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> approx_complex eps x y) a b

(* ------------------------------------------------------------------ *)
(* FFT                                                                 *)
(* ------------------------------------------------------------------ *)

let random_signal rng n =
  Array.init n (fun _ ->
      { Complex.re = Prng.float rng 2.0 -. 1.0; im = Prng.float rng 2.0 -. 1.0 })

let test_fft_roundtrip () =
  let rng = Prng.create 1 in
  List.iter
    (fun n ->
      let x = random_signal rng n in
      Alcotest.(check bool)
        (Printf.sprintf "ifft(fft(x)) = x at n=%d" n)
        true
        (carray_approx 1e-9 x (Fft.ifft (Fft.fft x))))
    [ 1; 2; 4; 8; 64; 512; 1024 ]

let test_fft_matches_naive () =
  let rng = Prng.create 2 in
  let x = random_signal rng 16 in
  Alcotest.(check bool) "fft = naive dft" true
    (carray_approx 1e-9 (Fft.fft x) (Fft.dft_naive x))

let test_fft_impulse () =
  (* FFT of a unit impulse is all ones. *)
  let n = 8 in
  let x = Array.make n Complex.zero in
  x.(0) <- Complex.one;
  let y = Fft.fft x in
  Array.iter
    (fun c -> Alcotest.(check bool) "flat spectrum" true (approx_complex 1e-12 c Complex.one))
    y

let test_fft_linearity () =
  let rng = Prng.create 3 in
  let a = random_signal rng 32 and b = random_signal rng 32 in
  let sum = Array.map2 Complex.add a b in
  let lhs = Fft.fft sum in
  let rhs = Array.map2 Complex.add (Fft.fft a) (Fft.fft b) in
  Alcotest.(check bool) "fft linear" true (carray_approx 1e-9 lhs rhs)

let test_fft_bad_length () =
  Alcotest.(check bool) "is_power_of_two" true (Fft.is_power_of_two 1024);
  Alcotest.(check bool) "12 not" false (Fft.is_power_of_two 12);
  Alcotest.(check bool) "0 not" false (Fft.is_power_of_two 0);
  match Fft.fft (Array.make 12 Complex.zero) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length 12 accepted"

let test_parseval () =
  let rng = Prng.create 4 in
  let x = random_signal rng 128 in
  let energy_time = Array.fold_left (fun acc c -> acc +. Complex.norm2 c) 0.0 x in
  let energy_freq =
    Array.fold_left (fun acc c -> acc +. Complex.norm2 c) 0.0 (Fft.fft x)
    /. 128.0
  in
  Alcotest.(check (float 1e-6)) "Parseval" energy_time energy_freq

(* ------------------------------------------------------------------ *)
(* Modulation                                                          *)
(* ------------------------------------------------------------------ *)

let random_bits rng n = Array.init n (fun _ -> Prng.int rng 2)

let test_modulation_roundtrip () =
  let rng = Prng.create 5 in
  List.iter
    (fun scheme ->
      let k = Modulation.bits_per_symbol scheme in
      let bits = random_bits rng (k * 100) in
      let rx = Modulation.demodulate scheme (Modulation.modulate scheme bits) in
      Alcotest.(check (float 0.0)) "noiseless roundtrip" 0.0
        (Modulation.bit_error_rate ~sent:bits ~received:rx))
    [ Modulation.Qpsk; Modulation.Qam16 ]

let test_modulation_power () =
  let rng = Prng.create 6 in
  List.iter
    (fun scheme ->
      let k = Modulation.bits_per_symbol scheme in
      let bits = random_bits rng (k * 4096) in
      let syms = Modulation.modulate scheme bits in
      let p =
        Array.fold_left (fun acc c -> acc +. Complex.norm2 c) 0.0 syms
        /. float_of_int (Array.length syms)
      in
      Alcotest.(check bool) "unit average power" true (abs_float (p -. 1.0) < 0.05))
    [ Modulation.Qpsk; Modulation.Qam16 ]

let test_scheme_of_m () =
  Alcotest.(check int) "qpsk bits" 2 (Modulation.bits_per_symbol (Modulation.scheme_of_m 2));
  Alcotest.(check int) "qam bits" 4 (Modulation.bits_per_symbol (Modulation.scheme_of_m 4));
  match Modulation.scheme_of_m 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "M=3 accepted"

let test_modulate_validation () =
  (match Modulation.modulate Modulation.Qpsk [| 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "odd bit count accepted");
  match Modulation.modulate Modulation.Qpsk [| 2; 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-bit accepted"

let test_ber_counts () =
  Alcotest.(check (float 1e-12)) "25% errors" 0.25
    (Modulation.bit_error_rate ~sent:[| 0; 0; 0; 0 |] ~received:[| 1; 0; 0; 0 |]);
  match Modulation.bit_error_rate ~sent:[| 0 |] ~received:[| 0; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

(* ------------------------------------------------------------------ *)
(* OFDM                                                                *)
(* ------------------------------------------------------------------ *)

let test_cyclic_prefix () =
  let cfg = Ofdm.config ~n:8 ~l:2 in
  Alcotest.(check int) "samples per symbol" 10 (Ofdm.samples_per_symbol cfg);
  let rng = Prng.create 7 in
  let freq = random_signal rng 8 in
  let tx = Ofdm.transmit_symbol cfg freq in
  Alcotest.(check int) "tx length" 10 (Array.length tx);
  (* prefix = last L samples *)
  Alcotest.(check bool) "prefix copies tail" true
    (approx_complex 1e-12 tx.(0) tx.(8) && approx_complex 1e-12 tx.(1) tx.(9));
  let rx = Ofdm.receive_symbol cfg tx in
  Alcotest.(check bool) "recovered" true (carray_approx 1e-9 freq rx)

let test_ofdm_bits_roundtrip () =
  let rng = Prng.create 8 in
  List.iter
    (fun (n, l, scheme) ->
      let cfg = Ofdm.config ~n ~l in
      let k = Modulation.bits_per_symbol scheme in
      let bits = random_bits rng (3 * n * k) in
      let stream, sent = Ofdm.transmit_bits cfg scheme bits in
      let rx = Ofdm.receive_bits cfg scheme stream in
      Alcotest.(check (float 0.0)) "noiseless BER 0" 0.0
        (Modulation.bit_error_rate ~sent ~received:rx))
    [ (64, 4, Modulation.Qpsk); (128, 8, Modulation.Qam16); (512, 1, Modulation.Qpsk) ]

let test_ofdm_padding () =
  let cfg = Ofdm.config ~n:8 ~l:1 in
  let stream, sent = Ofdm.transmit_bits cfg Modulation.Qpsk [| 1; 0; 1 |] in
  (* padded to one full symbol: 16 bits, 9 samples *)
  Alcotest.(check int) "padded bits" 16 (Array.length sent);
  Alcotest.(check int) "one symbol" 9 (Array.length stream);
  Alcotest.(check (list int)) "payload preserved" [ 1; 0; 1 ]
    (Array.to_list (Array.sub sent 0 3))

let test_ofdm_config_validation () =
  (match Ofdm.config ~n:12 ~l:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non power of two accepted");
  match Ofdm.config ~n:8 ~l:9 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "L > N accepted"

(* ------------------------------------------------------------------ *)
(* Channel                                                             *)
(* ------------------------------------------------------------------ *)

let test_awgn_snr () =
  let rng = Prng.create 9 in
  let x = random_signal (Prng.create 10) 8192 in
  let noisy = Channel.awgn rng ~snr_db:10.0 x in
  let noise = Array.map2 Complex.sub noisy x in
  let snr = Channel.signal_power x /. Channel.signal_power noise in
  let snr_db = 10.0 *. log10 snr in
  Alcotest.(check bool) "empirical SNR near 10 dB" true (abs_float (snr_db -. 10.0) < 1.0)

let test_qpsk_resilient_at_high_snr () =
  let rng = Prng.create 11 in
  let cfg = Ofdm.config ~n:64 ~l:4 in
  let bits = random_bits rng (64 * 2 * 8) in
  let stream, sent = Ofdm.transmit_bits cfg Modulation.Qpsk bits in
  let noisy = Channel.awgn (Prng.create 12) ~snr_db:25.0 stream in
  let rx = Ofdm.receive_bits cfg Modulation.Qpsk noisy in
  Alcotest.(check (float 0.001)) "BER ~ 0 at 25 dB" 0.0
    (Modulation.bit_error_rate ~sent ~received:rx)

let test_qam_degrades_below_qpsk () =
  (* At a harsh SNR, 16-QAM must show a higher BER than QPSK: the
     quality/robustness trade-off the control actor arbitrates. *)
  let mk scheme seed =
    let rng = Prng.create seed in
    let cfg = Ofdm.config ~n:64 ~l:4 in
    let k = Modulation.bits_per_symbol scheme in
    let bits = random_bits rng (64 * k * 16) in
    let stream, sent = Ofdm.transmit_bits cfg scheme bits in
    let noisy = Channel.awgn (Prng.create (seed + 100)) ~snr_db:12.0 stream in
    let rx = Ofdm.receive_bits cfg scheme noisy in
    Modulation.bit_error_rate ~sent ~received:rx
  in
  let ber_qpsk = mk Modulation.Qpsk 13 and ber_qam = mk Modulation.Qam16 14 in
  Alcotest.(check bool)
    (Printf.sprintf "qam (%.4f) worse than qpsk (%.4f)" ber_qam ber_qpsk)
    true (ber_qam > ber_qpsk)

(* ------------------------------------------------------------------ *)
(* FIR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_fir_identity () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (array (float 1e-12))) "delta passes through" x
    (Fir.apply [| 1.0 |] x)

let test_fir_moving_average () =
  let y = Fir.apply [| 0.5; 0.5 |] [| 2.0; 4.0; 6.0 |] in
  Alcotest.(check (array (float 1e-12))) "moving average" [| 1.0; 3.0; 5.0 |] y

let test_lowpass_dc_gain () =
  let taps = Fir.lowpass ~cutoff:0.2 ~taps:31 in
  let dc = Array.fold_left ( +. ) 0.0 taps in
  Alcotest.(check (float 1e-9)) "unit DC gain" 1.0 dc

let test_lowpass_attenuates_high_freq () =
  let taps = Fir.lowpass ~cutoff:0.1 ~taps:63 in
  let n = 512 in
  let lo = Array.init n (fun t -> sin (2.0 *. Float.pi *. 0.02 *. float_of_int t)) in
  let hi = Array.init n (fun t -> sin (2.0 *. Float.pi *. 0.4 *. float_of_int t)) in
  let power x = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x /. float_of_int n in
  let plo = power (Fir.apply taps lo) and phi = power (Fir.apply taps hi) in
  Alcotest.(check bool) "passband kept" true (plo > 0.3);
  Alcotest.(check bool) "stopband crushed" true (phi < 0.01)

let test_bandpass_selects () =
  let taps = Fir.bandpass ~low:0.15 ~high:0.25 ~taps:63 in
  let n = 512 in
  let tone f = Array.init n (fun t -> sin (2.0 *. Float.pi *. f *. float_of_int t)) in
  let power x = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x /. float_of_int n in
  let inband = power (Fir.apply taps (tone 0.2)) in
  let below = power (Fir.apply taps (tone 0.05)) in
  let above = power (Fir.apply taps (tone 0.45)) in
  Alcotest.(check bool) "in-band passes" true (inband > 0.2);
  Alcotest.(check bool) "below rejected" true (below < 0.02);
  Alcotest.(check bool) "above rejected" true (above < 0.02)

let test_fir_validation () =
  (match Fir.apply [||] [| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty taps accepted");
  (match Fir.lowpass ~cutoff:0.6 ~taps:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cutoff 0.6 accepted");
  match Fir.bandpass ~low:0.3 ~high:0.2 ~taps:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inverted band accepted"

let test_fm_demodulate () =
  Alcotest.(check (array (float 1e-12))) "short input" [||] (Fir.fm_demodulate [| 1.0 |]);
  let d = Fir.fm_demodulate [| 0.0; 0.5; 1.0 |] in
  Alcotest.(check int) "length n-1" 2 (Array.length d)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* The per-stage twiddle tables keep butterfly error at a few ulps, so
   these tolerances are two orders tighter than the 1e-8 the running
   w := w * wlen recurrence needed, across every power-of-two length the
   OFDM configurations use. *)
let arb_fft_case ~max_exp =
  QCheck.make
    ~print:(fun (e, seed) -> Printf.sprintf "n=%d seed=%d" (1 lsl e) seed)
    QCheck.Gen.(pair (int_range 0 max_exp) (int_range 0 100_000))

let prop_fft_roundtrip =
  QCheck.Test.make ~name:"ifft . fft = id" ~count:60 (arb_fft_case ~max_exp:10)
    (fun (e, seed) ->
      let x = random_signal (Prng.create seed) (1 lsl e) in
      carray_approx 1e-10 x (Fft.ifft (Fft.fft x)))

let prop_fft_matches_naive =
  QCheck.Test.make ~name:"fft = naive dft (pow2 lengths)" ~count:40
    (arb_fft_case ~max_exp:8) (fun (e, seed) ->
      let x = random_signal (Prng.create seed) (1 lsl e) in
      carray_approx 1e-9 (Fft.fft x) (Fft.dft_naive x))

let prop_modulation_roundtrip =
  QCheck.Test.make ~name:"demodulate . modulate = id (qam16)" ~count:100
    QCheck.(list_of_size (Gen.return 64) (int_bound 1))
    (fun bits ->
      let bits = Array.of_list bits in
      let rx = Modulation.demodulate Modulation.Qam16 (Modulation.modulate Modulation.Qam16 bits) in
      rx = bits)

let () =
  Alcotest.run "dsp"
    [
      ( "fft",
        [
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "matches naive" `Quick test_fft_matches_naive;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "linearity" `Quick test_fft_linearity;
          Alcotest.test_case "bad length" `Quick test_fft_bad_length;
          Alcotest.test_case "parseval" `Quick test_parseval;
        ] );
      ( "modulation",
        [
          Alcotest.test_case "roundtrip" `Quick test_modulation_roundtrip;
          Alcotest.test_case "unit power" `Quick test_modulation_power;
          Alcotest.test_case "scheme_of_m" `Quick test_scheme_of_m;
          Alcotest.test_case "validation" `Quick test_modulate_validation;
          Alcotest.test_case "ber" `Quick test_ber_counts;
        ] );
      ( "ofdm",
        [
          Alcotest.test_case "cyclic prefix" `Quick test_cyclic_prefix;
          Alcotest.test_case "bits roundtrip" `Quick test_ofdm_bits_roundtrip;
          Alcotest.test_case "padding" `Quick test_ofdm_padding;
          Alcotest.test_case "config validation" `Quick test_ofdm_config_validation;
        ] );
      ( "channel",
        [
          Alcotest.test_case "awgn snr" `Quick test_awgn_snr;
          Alcotest.test_case "qpsk at 25dB" `Quick test_qpsk_resilient_at_high_snr;
          Alcotest.test_case "qam vs qpsk" `Slow test_qam_degrades_below_qpsk;
        ] );
      ( "fir",
        [
          Alcotest.test_case "identity" `Quick test_fir_identity;
          Alcotest.test_case "moving average" `Quick test_fir_moving_average;
          Alcotest.test_case "dc gain" `Quick test_lowpass_dc_gain;
          Alcotest.test_case "lowpass response" `Quick test_lowpass_attenuates_high_freq;
          Alcotest.test_case "bandpass response" `Quick test_bandpass_selects;
          Alcotest.test_case "validation" `Quick test_fir_validation;
          Alcotest.test_case "fm demodulate" `Quick test_fm_demodulate;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fft_roundtrip;
            prop_fft_matches_naive;
            prop_modulation_roundtrip;
          ] );
    ]
