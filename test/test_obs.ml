open Tpdf_core
open Tpdf_sim
open Tpdf_param
module Obs = Tpdf_obs.Obs
module Ev = Tpdf_obs.Event
module Metrics = Tpdf_obs.Metrics
module Chrome = Tpdf_obs.Chrome
module Report = Tpdf_obs.Report
module Ring = Tpdf_obs.Ring
module Openmetrics = Tpdf_obs.Openmetrics
module Critpath = Tpdf_obs.Critpath

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser — just enough to validate the Chrome export.    *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              for _ = 1 to 4 do
                advance ();
                match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | _ -> fail "bad \\u escape"
              done;
              Buffer.add_char buf '?'
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
      | c ->
          if Char.code c < 0x20 then fail "unescaped control character";
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Arr [] end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let fig2_run ?obs ~iterations () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let v = Valuation.of_list [ ("p", 2) ] in
  let eng = Engine.create ~graph:g ~valuation:v ?obs ~default:0 () in
  Engine.run ~iterations eng

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_histogram_percentiles () =
  let m = Metrics.create () in
  for i = 1 to 100 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  match Metrics.histogram m "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check int) "count" 100 s.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 5050.0 s.Metrics.sum;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
      Alcotest.(check (float 1e-9)) "max" 100.0 s.Metrics.max;
      (* Hyndman-Fan type 7: h = p * (n - 1) interpolates between the
         straddling order statistics *)
      Alcotest.(check (float 1e-6)) "p50 interpolated" 50.5 s.Metrics.p50;
      Alcotest.(check (float 1e-6)) "p95 interpolated" 95.05 s.Metrics.p95

let test_histogram_small_sample () =
  (* small counts must interpolate, not degenerate to the max *)
  let m = Metrics.create () in
  for i = 1 to 10 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  (match Metrics.histogram m "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check (float 1e-6)) "p50 of 1..10" 5.5 s.Metrics.p50;
      Alcotest.(check (float 1e-6)) "p95 of 1..10" 9.55 s.Metrics.p95);
  let m2 = Metrics.create () in
  Metrics.observe m2 "x" 1.0;
  Metrics.observe m2 "x" 2.0;
  match Metrics.histogram m2 "x" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check (float 1e-6)) "p50 of a pair" 1.5 s.Metrics.p50;
      Alcotest.(check (float 1e-6)) "p95 of a pair" 1.95 s.Metrics.p95

let test_histogram_single_sample () =
  let m = Metrics.create () in
  Metrics.observe m "x" 3.5;
  match Metrics.histogram m "x" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check (float 1e-9)) "p50 of singleton" 3.5 s.Metrics.p50;
      Alcotest.(check (float 1e-9)) "p95 of singleton" 3.5 s.Metrics.p95

let test_counter_monotonic () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr ~by:41 m "c";
  Alcotest.(check int) "accumulated" 42 (Metrics.counter m "c");
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.counter m "other");
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.incr: counters are monotonic") (fun () ->
      Metrics.incr ~by:(-1) m "c");
  Alcotest.(check int) "value unchanged after rejection" 42
    (Metrics.counter m "c")

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

let test_disabled_collector () =
  Alcotest.(check bool) "disabled" false (Obs.enabled Obs.disabled);
  Obs.instant Obs.disabled ~cat:"x" ~track:"t" ~name:"n" ~ts_ms:1.0 ();
  Alcotest.(check int) "nothing recorded" 0 (Obs.event_count Obs.disabled);
  Alcotest.(check bool) "metrics stay empty" true
    (Metrics.is_empty (Obs.metrics Obs.disabled))

let test_sinks_and_shift () =
  let obs = Obs.create () in
  let seen = ref [] in
  Obs.add_sink obs (fun e -> seen := e :: !seen);
  Obs.instant obs ~cat:"a" ~track:"t" ~name:"base" ~ts_ms:1.0 ();
  let shifted = Obs.shift obs 10.0 in
  Obs.instant shifted ~cat:"a" ~track:"t" ~name:"later" ~ts_ms:1.0 ();
  let ts = List.map (fun e -> e.Ev.ts_ms) (Obs.events obs) in
  Alcotest.(check (list (float 1e-9))) "virtual offset applied" [ 1.0; 11.0 ] ts;
  Alcotest.(check int) "sink saw both (shared store)" 2 (List.length !seen)

(* ------------------------------------------------------------------ *)
(* Engine instrumentation                                              *)
(* ------------------------------------------------------------------ *)

let test_no_sink_same_stats () =
  let plain = fig2_run ~iterations:2 () in
  let obs = Obs.create () in
  let traced = fig2_run ~obs ~iterations:2 () in
  Alcotest.(check (list (pair string int))) "same firing counts"
    plain.Engine.firings traced.Engine.firings;
  Alcotest.(check (float 1e-9)) "same end time" plain.Engine.end_ms
    traced.Engine.end_ms;
  Alcotest.(check string) "same gantt" (Trace.gantt plain) (Trace.gantt traced)

let test_determinism () =
  let virtual_events obs =
    List.filter (fun e -> e.Ev.clock = Ev.Virtual) (Obs.events obs)
  in
  let o1 = Obs.create () in
  ignore (fig2_run ~obs:o1 ~iterations:2 ());
  let o2 = Obs.create () in
  ignore (fig2_run ~obs:o2 ~iterations:2 ());
  let e1 = virtual_events o1 and e2 = virtual_events o2 in
  Alcotest.(check int) "same event count" (List.length e1) (List.length e2);
  Alcotest.(check bool) "identical virtual-time traces" true (e1 = e2);
  Alcotest.(check bool) "trace is non-trivial" true (List.length e1 > 10)

let test_trace_golden () =
  let obs = Obs.create () in
  let stats = fig2_run ~obs ~iterations:2 () in
  let events = Obs.events obs in
  Alcotest.(check string) "csv byte-identical" (Trace.to_csv stats)
    (Trace.csv_of_events events);
  Alcotest.(check string) "gantt byte-identical" (Trace.gantt stats)
    (Trace.gantt_of_events events)

(* ------------------------------------------------------------------ *)
(* Chrome export                                                       *)
(* ------------------------------------------------------------------ *)

let test_chrome_json () =
  let obs = Obs.create () in
  ignore
    (Analysis.check_boundedness ~obs
       (Examples.fig2 ()).Examples.graph
       ~samples:[ Valuation.of_list [ ("p", 2) ] ]);
  ignore (fig2_run ~obs ~iterations:1 ());
  let json = Chrome.json_of_events (Obs.events obs) in
  let root =
    match parse_json json with
    | v -> v
    | exception Bad_json msg -> Alcotest.fail ("invalid JSON: " ^ msg)
  in
  let events =
    match member "traceEvents" root with
    | Some (Arr l) -> l
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let phases =
    List.map
      (fun e ->
        match member "ph" e with
        | Some (Str ph) ->
            (match member "ts" e with
            | Some (Num _) -> ()
            | None when ph = "M" -> ()
            | _ -> Alcotest.fail "event without numeric ts");
            ph
        | _ -> Alcotest.fail "event without ph")
      events
  in
  let has ph = List.mem ph phases in
  Alcotest.(check bool) "complete spans" true (has "X");
  Alcotest.(check bool) "counters" true (has "C");
  Alcotest.(check bool) "thread metadata" true (has "M");
  (* both clocks present: virtual = pid 1, wall = pid 2 *)
  let pids =
    List.filter_map
      (fun e -> match member "pid" e with Some (Num p) -> Some p | _ -> None)
      events
  in
  Alcotest.(check bool) "virtual process" true (List.mem 1.0 pids);
  Alcotest.(check bool) "wall process" true (List.mem 2.0 pids)

let test_chrome_escaping () =
  let obs = Obs.create () in
  Obs.instant obs ~cat:"c" ~track:"t" ~name:"quote\"back\\slash\ntab\t"
    ~args:[ ("k", Ev.Str "v\"2") ]
    ~ts_ms:0.5 ();
  match parse_json (Chrome.json_of_events (Obs.events obs)) with
  | _ -> ()
  | exception Bad_json msg -> Alcotest.fail ("escaping broke JSON: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Reports and scenarios                                               *)
(* ------------------------------------------------------------------ *)

let test_csv_report () =
  let obs = Obs.create () in
  ignore (fig2_run ~obs ~iterations:1 ());
  let csv = Report.csv_of_events (Obs.events obs) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "clock,cat,track,kind,name,ts_ms,dur_ms,value,args"
    (List.hd lines);
  Alcotest.(check int) "one row per event"
    (Obs.event_count obs)
    (List.length lines - 1)

let test_scenario_sweep_covers_actors () =
  let g, _ = Tpdf_apps.Ofdm_app.tpdf_graph () in
  let v = Valuation.of_list [ ("beta", 2); ("N", 8); ("L", 1) ] in
  let obs = Obs.create () in
  let scenarios = Reconfigure.mode_scenarios g in
  Alcotest.(check bool) "ofdm sweeps >= 2 scenarios" true
    (List.length scenarios >= 2);
  ignore
    (Reconfigure.run_scenarios ~graph:g ~obs ~valuation:v ~default:0 scenarios);
  let events = Obs.events obs in
  let fired =
    List.sort_uniq compare
      (List.filter_map
         (fun e -> if e.Ev.cat = "firing" then Some e.Ev.track else None)
         events)
  in
  Alcotest.(check (list string)) "every actor fires somewhere in the sweep"
    (List.sort compare (Graph.actors g))
    fired;
  let reconfigs = Metrics.counter (Obs.metrics obs) "engine.reconfigurations" in
  Alcotest.(check int) "one reconfig instant per scenario"
    (List.length scenarios) reconfigs

(* ------------------------------------------------------------------ *)
(* Flight recorder (ring)                                              *)
(* ------------------------------------------------------------------ *)

let test_ring_bounded () =
  let obs = Obs.create ~keep_events:false () in
  let config = { Ring.default_config with Ring.capacity = 32; keep_cats = [] } in
  let ring = Ring.attach ~config obs in
  for i = 1 to 1000 do
    Obs.span obs ~cat:"firing" ~track:"A"
      ~name:(Printf.sprintf "s%d" i)
      ~ts_ms:(float_of_int i) ~dur_ms:1.0 ()
  done;
  Alcotest.(check int) "seen every offer" 1000 (Ring.seen ring);
  Alcotest.(check int) "kept every span" 1000 (Ring.kept ring);
  Alcotest.(check int) "retained bounded by capacity" 32 (Ring.retained ring);
  Alcotest.(check int) "evicted the rest" 968 (Ring.evicted ring);
  Alcotest.(check (list string)) "window holds the newest spans, oldest first"
    (List.init 32 (fun i -> Printf.sprintf "s%d" (969 + i)))
    (List.map (fun (e : Ev.t) -> e.Ev.name) (Ring.events ring))

let test_ring_per_kind_sampling () =
  let obs = Obs.create ~keep_events:false () in
  let config =
    {
      Ring.default_config with
      Ring.span_every = 4;
      counter_every = 2;
      keep_cats = [ "txn" ];
    }
  in
  let ring = Ring.attach ~config obs in
  for i = 0 to 7 do
    Obs.span obs ~cat:"firing" ~track:"A"
      ~name:(Printf.sprintf "f%d" i)
      ~ts_ms:(float_of_int i) ~dur_ms:0.5 ()
  done;
  (* the 9th span is kept by kind (8 mod 4 = 0); the 10th only because
     its category is protected *)
  Obs.span obs ~cat:"txn" ~track:"T" ~name:"txn.a" ~ts_ms:8.0 ~dur_ms:0.1 ();
  Obs.span obs ~cat:"txn" ~track:"T" ~name:"txn.b" ~ts_ms:9.0 ~dur_ms:0.1 ();
  for i = 0 to 3 do
    Obs.counter obs ~cat:"chan" ~track:"e1"
      ~name:(Printf.sprintf "c%d" i)
      ~ts_ms:(float_of_int i) 1.0
  done;
  Obs.instant obs ~cat:"reconfig" ~track:"engine" ~name:"i0" ~ts_ms:20.0 ();
  Obs.instant obs ~cat:"whatever" ~track:"engine" ~name:"i1" ~ts_ms:21.0 ();
  (* wall-clock events are excluded unless keep_wall *)
  Obs.span ~clock:Ev.Wall obs ~cat:"par" ~track:"w" ~name:"wall" ~ts_ms:22.0
    ~dur_ms:1.0 ();
  Alcotest.(check (list string)) "deterministic per-kind retention"
    [ "f0"; "f4"; "txn.a"; "txn.b"; "c0"; "c2"; "i0"; "i1" ]
    (List.map (fun (e : Ev.t) -> e.Ev.name) (Ring.events ring));
  Alcotest.(check int) "wall event still counted as seen" 17 (Ring.seen ring)

(* The retained stream is a pure function of the delivered event stream,
   so a pooled sampled run must retain byte-for-byte the same window as
   the sequential one. *)
let test_ring_deterministic_across_domains () =
  let run domains =
    let pool =
      if domains = 1 then None else Some (Tpdf_par.Pool.create ~domains)
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Tpdf_par.Pool.shutdown pool)
      (fun () ->
        let { Examples.graph = g; _ } = Examples.fig2 () in
        let v = Valuation.of_list [ ("p", 2) ] in
        let obs =
          Obs.create ~keep_events:false
            ~sampling:{ Obs.span_every = 2; occupancy_every = 1 }
            ()
        in
        let ring = Ring.attach obs in
        let eng = Engine.create ~graph:g ~valuation:v ~obs ?pool ~default:0 () in
        ignore (Engine.run ~iterations:6 eng);
        Report.csv_of_events (Ring.events ring))
  in
  let seq = run 1 in
  Alcotest.(check bool) "retained stream non-trivial" true
    (String.length seq > 200);
  Alcotest.(check string) "byte-identical at 2 domains" seq (run 2);
  Alcotest.(check string) "byte-identical at 4 domains" seq (run 4)

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                              *)
(* ------------------------------------------------------------------ *)

let test_openmetrics_family_mapping () =
  let check name fam labels =
    let f, l = Openmetrics.family_of name in
    Alcotest.(check string) (name ^ " family") fam f;
    Alcotest.(check (list (pair string string))) (name ^ " labels") labels l
  in
  check "engine.firings.FFT" "tpdf_engine_firings" [ ("actor", "FFT") ];
  check "engine.firing_ms.FFT" "tpdf_engine_firing_ms" [ ("actor", "FFT") ];
  check "engine.busy_ms.EQ" "tpdf_engine_busy_ms" [ ("actor", "EQ") ];
  check "channel.e3.dropped" "tpdf_channel_dropped" [ ("channel", "e3") ];
  check "channel.e3.occupancy" "tpdf_channel_occupancy" [ ("channel", "e3") ];
  check "domain.2.firings" "tpdf_domain_firings" [ ("domain", "2") ];
  check "supervisor.retries.EQ" "tpdf_supervisor_retries" [ ("actor", "EQ") ];
  (* unknown names become their own sanitized family, no labels *)
  check "engine.steps" "tpdf_engine_steps" [];
  check "analysis.liveness_ms" "tpdf_analysis_liveness_ms" []

let test_openmetrics_render () =
  let m = Metrics.create () in
  Metrics.incr ~by:3 m "engine.firings.FFT";
  Metrics.incr m "engine.firings.EQ";
  Metrics.set_gauge m "domain.0.firings" 12.0;
  Metrics.observe m "engine.firing_ms.FFT" 1.0;
  Metrics.observe m "engine.firing_ms.FFT" 2.0;
  let lines =
    String.split_on_char '\n' (String.trim (Openmetrics.render m))
  in
  let has l = List.mem l lines in
  Alcotest.(check bool) "counter sample with actor label" true
    (has "tpdf_engine_firings_total{actor=\"FFT\"} 3");
  Alcotest.(check bool) "second subject, same family" true
    (has "tpdf_engine_firings_total{actor=\"EQ\"} 1");
  Alcotest.(check bool) "gauge sample" true
    (has "tpdf_domain_firings{domain=\"0\"} 12");
  Alcotest.(check bool) "summary median" true
    (has "tpdf_engine_firing_ms{actor=\"FFT\",quantile=\"0.5\"} 1.5");
  Alcotest.(check bool) "summary count" true
    (has "tpdf_engine_firing_ms_count{actor=\"FFT\"} 2");
  Alcotest.(check bool) "summary sum" true
    (has "tpdf_engine_firing_ms_sum{actor=\"FFT\"} 3");
  Alcotest.(check int) "one TYPE line for the counter family" 1
    (List.length
       (List.filter (fun l -> l = "# TYPE tpdf_engine_firings counter") lines));
  Alcotest.(check string) "EOF terminator"
    "# EOF"
    (List.nth lines (List.length lines - 1))

let test_openmetrics_no_duplicate_series () =
  let obs = Obs.create () in
  ignore (fig2_run ~obs ~iterations:2 ());
  let lines =
    String.split_on_char '\n'
      (String.trim (Openmetrics.render (Obs.metrics obs)))
  in
  Alcotest.(check bool) "non-trivial exposition" true (List.length lines > 8);
  let series =
    List.filter_map
      (fun l ->
        if l = "" || l.[0] = '#' then None
        else
          match String.index_opt l ' ' with
          | Some i -> Some (String.sub l 0 i)
          | None -> Some l)
      lines
  in
  let sorted = List.sort compare series in
  let rec dup = function
    | a :: b :: _ when a = b -> Some a
    | _ :: tl -> dup tl
    | [] -> None
  in
  (match dup sorted with
  | Some s -> Alcotest.fail ("duplicate series: " ^ s)
  | None -> ());
  Alcotest.(check string) "EOF terminator" "# EOF"
    (List.nth lines (List.length lines - 1))

let test_openmetrics_exporter () =
  let m = Metrics.create () in
  Metrics.incr m "engine.firings.A";
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpdf_obs_test_%d.prom" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let ex = Openmetrics.Exporter.create ~path m in
      Openmetrics.Exporter.flush ex;
      let content = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string) "file holds the rendered exposition"
        (Openmetrics.render m) content)

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)
(* ------------------------------------------------------------------ *)

let firing ?(mode = "m") ?(index = 0) ~track ~ts ~dur () : Ev.t =
  {
    Ev.name = track ^ "/" ^ mode;
    cat = "firing";
    track;
    clock = Ev.Virtual;
    ts_ms = ts;
    payload = Ev.Span dur;
    args = [ ("mode", Ev.Str mode); ("index", Ev.Int index) ];
  }

let test_critpath_chain () =
  (* A(0..1) -> B(1..2) -> C(2..3) with a short parallel D(0..0.5) *)
  let events =
    [
      firing ~track:"A" ~ts:0.0 ~dur:1.0 ();
      firing ~track:"D" ~ts:0.0 ~dur:0.5 ();
      firing ~track:"B" ~ts:1.0 ~dur:1.0 ();
      firing ~track:"C" ~ts:2.0 ~dur:1.0 ();
    ]
  in
  match Critpath.of_events events with
  | None -> Alcotest.fail "expected a report"
  | Some r ->
      Alcotest.(check int) "span count" 4 r.Critpath.span_count;
      Alcotest.(check (float 1e-9)) "t0" 0.0 r.Critpath.t0;
      Alcotest.(check (float 1e-9)) "t1" 3.0 r.Critpath.t1;
      Alcotest.(check (float 1e-9)) "path length" 3.0 r.Critpath.cp_ms;
      Alcotest.(check (list string)) "path follows the chain, oldest first"
        [ "A"; "B"; "C" ]
        (List.map (fun s -> s.Critpath.track) r.Critpath.critical_path);
      Alcotest.(check (list (pair string (float 1e-9))))
        "busy per track, busiest first"
        [ ("A", 1.0); ("B", 1.0); ("C", 1.0); ("D", 0.5) ]
        r.Critpath.busy_ms;
      (* A, B and C each hold 2/7 of total busy time; D's 1/7 stays
         below the default 0.25 threshold *)
      Alcotest.(check (list string)) "suspects above the threshold"
        [ "A"; "B"; "C" ]
        (List.map fst (Critpath.suspects r));
      let rendered = Format.asprintf "%a" Critpath.pp_path r in
      Alcotest.(check bool) "pp_path names the path" true
        (String.length rendered > 0)

let test_critpath_empty () =
  Alcotest.(check bool) "no events" true (Critpath.of_events [] = None);
  let not_firing =
    { (firing ~track:"A" ~ts:0.0 ~dur:1.0 ()) with Ev.cat = "analysis" }
  in
  Alcotest.(check bool) "non-firing spans ignored" true
    (Critpath.of_events [ not_firing ] = None)

let test_critpath_fig2 () =
  let obs = Obs.create () in
  let stats = fig2_run ~obs ~iterations:2 () in
  match Critpath.of_events (Obs.events obs) with
  | None -> Alcotest.fail "instrumented run must yield firing spans"
  | Some r ->
      Alcotest.(check (float 1e-9)) "observed makespan matches the run"
        stats.Engine.end_ms
        (r.Critpath.t1 -. r.Critpath.t0);
      Alcotest.(check bool) "path is non-trivial" true
        (List.length r.Critpath.critical_path > 1);
      (* chained spans cannot overlap, so the path fits in the makespan *)
      Alcotest.(check bool) "cp_ms bounded by the makespan" true
        (r.Critpath.cp_ms <= stats.Engine.end_ms +. 1e-9);
      Alcotest.(check bool) "cp_ms positive" true (r.Critpath.cp_ms > 0.0)

(* ------------------------------------------------------------------ *)
(* Chrome per-domain processes                                         *)
(* ------------------------------------------------------------------ *)

let test_chrome_domain_processes () =
  let obs = Obs.create () in
  Obs.span ~clock:Ev.Wall obs ~cat:"par" ~track:"stage" ~name:"fire"
    ~args:[ ("domain", Ev.Int 0) ]
    ~ts_ms:0.0 ~dur_ms:1.0 ();
  Obs.span ~clock:Ev.Wall obs ~cat:"par" ~track:"stage" ~name:"fire"
    ~args:[ ("domain", Ev.Int 2) ]
    ~ts_ms:1.0 ~dur_ms:1.0 ();
  (* an undecorated wall span stays in the wall process *)
  Obs.span ~clock:Ev.Wall obs ~cat:"analysis" ~track:"t" ~name:"plain"
    ~ts_ms:2.0 ~dur_ms:1.0 ();
  let root =
    match parse_json (Chrome.json_of_events (Obs.events obs)) with
    | v -> v
    | exception Bad_json msg -> Alcotest.fail ("invalid JSON: " ^ msg)
  in
  let events =
    match member "traceEvents" root with
    | Some (Arr l) -> l
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  let pid_of e =
    match member "pid" e with Some (Num p) -> int_of_float p | _ -> -1
  in
  let span_pids =
    List.filter_map
      (fun e ->
        match member "ph" e with
        | Some (Str "X") -> Some (pid_of e)
        | _ -> None)
      events
  in
  Alcotest.(check (list int)) "spans grouped per domain (pid 3 + d)"
    [ 2; 3; 5 ]
    (List.sort compare span_pids);
  let proc_names =
    List.filter_map
      (fun e ->
        match (member "ph" e, member "name" e) with
        | Some (Str "M"), Some (Str "process_name") -> (
            match Option.bind (member "args" e) (member "name") with
            | Some (Str n) -> Some (pid_of e, n)
            | _ -> None)
        | _ -> None)
      events
  in
  Alcotest.(check bool) "domain 0 process named" true
    (List.mem (3, "domain 0 (tpdf_par)") proc_names);
  Alcotest.(check bool) "domain 2 process named" true
    (List.mem (5, "domain 2 (tpdf_par)") proc_names)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "small-sample percentiles" `Quick
            test_histogram_small_sample;
          Alcotest.test_case "singleton histogram" `Quick test_histogram_single_sample;
          Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonic;
        ] );
      ( "collector",
        [
          Alcotest.test_case "disabled no-op" `Quick test_disabled_collector;
          Alcotest.test_case "sinks and shift" `Quick test_sinks_and_shift;
        ] );
      ( "engine",
        [
          Alcotest.test_case "no-sink output unchanged" `Quick test_no_sink_same_stats;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "trace golden" `Quick test_trace_golden;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "well-formed JSON" `Quick test_chrome_json;
          Alcotest.test_case "string escaping" `Quick test_chrome_escaping;
        ] );
      ( "reports",
        [
          Alcotest.test_case "csv" `Quick test_csv_report;
          Alcotest.test_case "ofdm scenario sweep" `Quick test_scenario_sweep_covers_actors;
        ] );
      ( "ring",
        [
          Alcotest.test_case "bounded window" `Quick test_ring_bounded;
          Alcotest.test_case "per-kind sampling" `Quick
            test_ring_per_kind_sampling;
          Alcotest.test_case "deterministic at 1/2/4 domains" `Quick
            test_ring_deterministic_across_domains;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "family mapping" `Quick
            test_openmetrics_family_mapping;
          Alcotest.test_case "rendering" `Quick test_openmetrics_render;
          Alcotest.test_case "no duplicate series" `Quick
            test_openmetrics_no_duplicate_series;
          Alcotest.test_case "exporter writes atomically" `Quick
            test_openmetrics_exporter;
        ] );
      ( "critpath",
        [
          Alcotest.test_case "chain reconstruction" `Quick test_critpath_chain;
          Alcotest.test_case "no firing spans" `Quick test_critpath_empty;
          Alcotest.test_case "fig2 end to end" `Quick test_critpath_fig2;
        ] );
      ( "chrome-domains",
        [
          Alcotest.test_case "per-domain processes" `Quick
            test_chrome_domain_processes;
        ] );
    ]
