open Tpdf_core
open Tpdf_sim
open Tpdf_param
module Obs = Tpdf_obs.Obs
module Ev = Tpdf_obs.Event
module Metrics = Tpdf_obs.Metrics
module Chrome = Tpdf_obs.Chrome
module Report = Tpdf_obs.Report

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser — just enough to validate the Chrome export.    *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              for _ = 1 to 4 do
                advance ();
                match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | _ -> fail "bad \\u escape"
              done;
              Buffer.add_char buf '?'
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
      | c ->
          if Char.code c < 0x20 then fail "unescaped control character";
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Arr [] end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let fig2_run ?obs ~iterations () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let v = Valuation.of_list [ ("p", 2) ] in
  let eng = Engine.create ~graph:g ~valuation:v ?obs ~default:0 () in
  Engine.run ~iterations eng

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_histogram_percentiles () =
  let m = Metrics.create () in
  for i = 1 to 100 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  match Metrics.histogram m "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check int) "count" 100 s.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 5050.0 s.Metrics.sum;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
      Alcotest.(check (float 1e-9)) "max" 100.0 s.Metrics.max;
      Alcotest.(check (float 1e-9)) "p50 nearest-rank" 50.0 s.Metrics.p50;
      Alcotest.(check (float 1e-9)) "p95 nearest-rank" 95.0 s.Metrics.p95

let test_histogram_single_sample () =
  let m = Metrics.create () in
  Metrics.observe m "x" 3.5;
  match Metrics.histogram m "x" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check (float 1e-9)) "p50 of singleton" 3.5 s.Metrics.p50;
      Alcotest.(check (float 1e-9)) "p95 of singleton" 3.5 s.Metrics.p95

let test_counter_monotonic () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr ~by:41 m "c";
  Alcotest.(check int) "accumulated" 42 (Metrics.counter m "c");
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.counter m "other");
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.incr: counters are monotonic") (fun () ->
      Metrics.incr ~by:(-1) m "c");
  Alcotest.(check int) "value unchanged after rejection" 42
    (Metrics.counter m "c")

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

let test_disabled_collector () =
  Alcotest.(check bool) "disabled" false (Obs.enabled Obs.disabled);
  Obs.instant Obs.disabled ~cat:"x" ~track:"t" ~name:"n" ~ts_ms:1.0 ();
  Alcotest.(check int) "nothing recorded" 0 (Obs.event_count Obs.disabled);
  Alcotest.(check bool) "metrics stay empty" true
    (Metrics.is_empty (Obs.metrics Obs.disabled))

let test_sinks_and_shift () =
  let obs = Obs.create () in
  let seen = ref [] in
  Obs.add_sink obs (fun e -> seen := e :: !seen);
  Obs.instant obs ~cat:"a" ~track:"t" ~name:"base" ~ts_ms:1.0 ();
  let shifted = Obs.shift obs 10.0 in
  Obs.instant shifted ~cat:"a" ~track:"t" ~name:"later" ~ts_ms:1.0 ();
  let ts = List.map (fun e -> e.Ev.ts_ms) (Obs.events obs) in
  Alcotest.(check (list (float 1e-9))) "virtual offset applied" [ 1.0; 11.0 ] ts;
  Alcotest.(check int) "sink saw both (shared store)" 2 (List.length !seen)

(* ------------------------------------------------------------------ *)
(* Engine instrumentation                                              *)
(* ------------------------------------------------------------------ *)

let test_no_sink_same_stats () =
  let plain = fig2_run ~iterations:2 () in
  let obs = Obs.create () in
  let traced = fig2_run ~obs ~iterations:2 () in
  Alcotest.(check (list (pair string int))) "same firing counts"
    plain.Engine.firings traced.Engine.firings;
  Alcotest.(check (float 1e-9)) "same end time" plain.Engine.end_ms
    traced.Engine.end_ms;
  Alcotest.(check string) "same gantt" (Trace.gantt plain) (Trace.gantt traced)

let test_determinism () =
  let virtual_events obs =
    List.filter (fun e -> e.Ev.clock = Ev.Virtual) (Obs.events obs)
  in
  let o1 = Obs.create () in
  ignore (fig2_run ~obs:o1 ~iterations:2 ());
  let o2 = Obs.create () in
  ignore (fig2_run ~obs:o2 ~iterations:2 ());
  let e1 = virtual_events o1 and e2 = virtual_events o2 in
  Alcotest.(check int) "same event count" (List.length e1) (List.length e2);
  Alcotest.(check bool) "identical virtual-time traces" true (e1 = e2);
  Alcotest.(check bool) "trace is non-trivial" true (List.length e1 > 10)

let test_trace_golden () =
  let obs = Obs.create () in
  let stats = fig2_run ~obs ~iterations:2 () in
  let events = Obs.events obs in
  Alcotest.(check string) "csv byte-identical" (Trace.to_csv stats)
    (Trace.csv_of_events events);
  Alcotest.(check string) "gantt byte-identical" (Trace.gantt stats)
    (Trace.gantt_of_events events)

(* ------------------------------------------------------------------ *)
(* Chrome export                                                       *)
(* ------------------------------------------------------------------ *)

let test_chrome_json () =
  let obs = Obs.create () in
  ignore
    (Analysis.check_boundedness ~obs
       (Examples.fig2 ()).Examples.graph
       ~samples:[ Valuation.of_list [ ("p", 2) ] ]);
  ignore (fig2_run ~obs ~iterations:1 ());
  let json = Chrome.json_of_events (Obs.events obs) in
  let root =
    match parse_json json with
    | v -> v
    | exception Bad_json msg -> Alcotest.fail ("invalid JSON: " ^ msg)
  in
  let events =
    match member "traceEvents" root with
    | Some (Arr l) -> l
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let phases =
    List.map
      (fun e ->
        match member "ph" e with
        | Some (Str ph) ->
            (match member "ts" e with
            | Some (Num _) -> ()
            | None when ph = "M" -> ()
            | _ -> Alcotest.fail "event without numeric ts");
            ph
        | _ -> Alcotest.fail "event without ph")
      events
  in
  let has ph = List.mem ph phases in
  Alcotest.(check bool) "complete spans" true (has "X");
  Alcotest.(check bool) "counters" true (has "C");
  Alcotest.(check bool) "thread metadata" true (has "M");
  (* both clocks present: virtual = pid 1, wall = pid 2 *)
  let pids =
    List.filter_map
      (fun e -> match member "pid" e with Some (Num p) -> Some p | _ -> None)
      events
  in
  Alcotest.(check bool) "virtual process" true (List.mem 1.0 pids);
  Alcotest.(check bool) "wall process" true (List.mem 2.0 pids)

let test_chrome_escaping () =
  let obs = Obs.create () in
  Obs.instant obs ~cat:"c" ~track:"t" ~name:"quote\"back\\slash\ntab\t"
    ~args:[ ("k", Ev.Str "v\"2") ]
    ~ts_ms:0.5 ();
  match parse_json (Chrome.json_of_events (Obs.events obs)) with
  | _ -> ()
  | exception Bad_json msg -> Alcotest.fail ("escaping broke JSON: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Reports and scenarios                                               *)
(* ------------------------------------------------------------------ *)

let test_csv_report () =
  let obs = Obs.create () in
  ignore (fig2_run ~obs ~iterations:1 ());
  let csv = Report.csv_of_events (Obs.events obs) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "clock,cat,track,kind,name,ts_ms,dur_ms,value,args"
    (List.hd lines);
  Alcotest.(check int) "one row per event"
    (Obs.event_count obs)
    (List.length lines - 1)

let test_scenario_sweep_covers_actors () =
  let g, _ = Tpdf_apps.Ofdm_app.tpdf_graph () in
  let v = Valuation.of_list [ ("beta", 2); ("N", 8); ("L", 1) ] in
  let obs = Obs.create () in
  let scenarios = Reconfigure.mode_scenarios g in
  Alcotest.(check bool) "ofdm sweeps >= 2 scenarios" true
    (List.length scenarios >= 2);
  ignore
    (Reconfigure.run_scenarios ~graph:g ~obs ~valuation:v ~default:0 scenarios);
  let events = Obs.events obs in
  let fired =
    List.sort_uniq compare
      (List.filter_map
         (fun e -> if e.Ev.cat = "firing" then Some e.Ev.track else None)
         events)
  in
  Alcotest.(check (list string)) "every actor fires somewhere in the sweep"
    (List.sort compare (Graph.actors g))
    fired;
  let reconfigs = Metrics.counter (Obs.metrics obs) "engine.reconfigurations" in
  Alcotest.(check int) "one reconfig instant per scenario"
    (List.length scenarios) reconfigs

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "singleton histogram" `Quick test_histogram_single_sample;
          Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonic;
        ] );
      ( "collector",
        [
          Alcotest.test_case "disabled no-op" `Quick test_disabled_collector;
          Alcotest.test_case "sinks and shift" `Quick test_sinks_and_shift;
        ] );
      ( "engine",
        [
          Alcotest.test_case "no-sink output unchanged" `Quick test_no_sink_same_stats;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "trace golden" `Quick test_trace_golden;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "well-formed JSON" `Quick test_chrome_json;
          Alcotest.test_case "string escaping" `Quick test_chrome_escaping;
        ] );
      ( "reports",
        [
          Alcotest.test_case "csv" `Quick test_csv_report;
          Alcotest.test_case "ofdm scenario sweep" `Quick test_scenario_sweep_covers_actors;
        ] );
    ]
