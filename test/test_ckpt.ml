(* Checkpoint/restore and transactional reconfiguration suite.

   Pins the tentpole guarantees of tpdf_ckpt:
   - the checkpoint codec round-trips exactly and rejects every torn or
     corrupted file (torture at every byte offset);
   - restore-then-continue is byte-identical to an uninterrupted run —
     outcome, stats, trace and tpdf_obs streams — for every shipped
     graph under every mode scenario, at every iteration boundary and at
     a mid-iteration point, sequentially and on 2/4-domain pools;
   - Reconfigure's validate-then-commit transactions roll an invalid
     valuation or scenario back without a trace and continue under the
     previous one;
   - the supervisor's restart-from-checkpoint rolls a failed iteration
     back without double-counting metrics or leaking the rolled-back
     firings' events, deterministically at 1/2/4 domains. *)

open Tpdf_core
open Tpdf_param
module Sim = Tpdf_sim
module Engine = Tpdf_sim.Engine
module Behavior = Tpdf_sim.Behavior
module Heap = Tpdf_sim.Event_heap
module Obs = Tpdf_obs.Obs
module Metrics = Tpdf_obs.Metrics
module Ev = Tpdf_obs.Event
module Fault = Tpdf_fault
module Apps = Tpdf_apps
module Ckpt = Tpdf_ckpt.Ckpt

let graphs_dir =
  let d = "../graphs" in
  if Sys.file_exists d then d else "graphs"

let graph_files =
  Sys.readdir graphs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".tpdf")
  |> List.sort compare

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let count_events obs ~cat ~name =
  List.length
    (List.filter
       (fun (e : Ev.t) -> e.cat = cat && e.name = name)
       (Obs.events obs))

(* ------------------------------------------------------------------ *)
(* Checkpoint codec round-trip                                         *)
(* ------------------------------------------------------------------ *)

let fig2_graph () = (Examples.fig2 ()).Examples.graph

(* A checkpoint with a real mid-iteration snapshot in it: fig2 capped at
   half its end time, so the heap, in-flight records and channels are
   all non-trivial. *)
let mid_run_ckpt () =
  let g = fig2_graph () in
  let v = Valuation.of_list [ ("p", 3) ] in
  let eng = Engine.create ~graph:g ~valuation:v ~default:0 () in
  (match Engine.run_outcome ~iterations:2 ~until_ms:2.5 eng with
  | Engine.Stalled _ when Engine.pending_events eng > 0 -> ()
  | _ -> Alcotest.fail "expected the cap to cut fig2 mid-iteration");
  {
    Ckpt.kind = "run";
    meta =
      [
        ("graph", "fig2");
        ("iterations", "2");
        ("done", "0");
        ("note", "tricky \"value\" with \\backslash\ttab\nnewline");
        ("empty", "");
      ];
    graph_src = Serial.to_string g;
    valuation = Valuation.bindings v;
    snapshot = Some (Engine.snapshot ~encode:string_of_int eng);
  }

let test_codec_roundtrip () =
  let c = mid_run_ckpt () in
  (match Ckpt.of_string (Ckpt.to_string c) with
  | Ok c' ->
      Alcotest.(check bool) "round-trips exactly" true (c = c');
      Alcotest.(check string)
        "stable print" (Ckpt.to_string c) (Ckpt.to_string c')
  | Error m -> Alcotest.fail m);
  (* and without a snapshot (boundary checkpoint) *)
  let cb = { c with Ckpt.snapshot = None; kind = "chaos" } in
  match Ckpt.of_string (Ckpt.to_string cb) with
  | Ok c' -> Alcotest.(check bool) "boundary round-trips" true (cb = c')
  | Error m -> Alcotest.fail m

let test_codec_rejects_bad_atoms () =
  let c = mid_run_ckpt () in
  List.iter
    (fun bad ->
      match Ckpt.to_string { c with Ckpt.kind = bad } with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "kind %S accepted" bad))
    [ ""; "two words"; "qu\"ote"; "back\\slash"; "new\nline" ];
  match Ckpt.to_string { c with Ckpt.meta = [ ("bad key", "v") ] } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "meta key with a space accepted"

let test_fnv_vector () =
  (* published FNV-1a 64-bit test vectors *)
  Alcotest.(check int64) "empty" 0xcbf29ce484222325L (Ckpt.fnv1a64 "");
  Alcotest.(check int64) "a" 0xaf63dc4c8601ec8cL (Ckpt.fnv1a64 "a");
  Alcotest.(check int64) "foobar" 0x85944171f73967e8L (Ckpt.fnv1a64 "foobar")

(* Torn-write torture: every strict prefix must be rejected — never a
   crash, never a silent Ok — and so must trailing garbage and
   single-byte corruption anywhere in the file. *)
let test_torn_torture () =
  let s = Ckpt.to_string (mid_run_ckpt ()) in
  let n = String.length s in
  Alcotest.(check bool) "non-trivial file" true (n > 500);
  for i = 0 to n - 1 do
    match Ckpt.of_string (String.sub s 0 i) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "torn prefix of %d bytes accepted" i)
  done;
  (match Ckpt.of_string (s ^ "trailing garbage\n") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  for i = 0 to n - 1 do
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    match Ckpt.of_string (Bytes.to_string b) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "byte %d flipped but accepted" i)
  done

(* ------------------------------------------------------------------ *)
(* Store: numbered files, latest-valid fallback                        *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpdf_ckpt_test_%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup (fun () -> f dir)

let test_store () =
  with_temp_dir @@ fun dir ->
  let st = Ckpt.Store.open_dir dir in
  let c = mid_run_ckpt () in
  let at seq = { c with Ckpt.meta = [ ("seq", string_of_int seq) ] } in
  ignore (Ckpt.Store.save st ~seq:1 (at 1));
  ignore (Ckpt.Store.save st ~seq:2 (at 2));
  let p3 = Ckpt.Store.save st ~seq:3 (at 3) in
  (* non-canonical names are ignored *)
  let junk = Filename.concat dir "ckpt-0000000a.tpdfckpt" in
  let oc = open_out junk in
  output_string oc "not a checkpoint";
  close_out oc;
  Alcotest.(check (list int)) "seqs" [ 1; 2; 3 ] (Ckpt.Store.seqs st);
  (match Ckpt.Store.latest st with
  | Some (3, _, c3) ->
      Alcotest.(check (option string)) "latest is 3" (Some "3")
        (Ckpt.meta c3 "seq")
  | _ -> Alcotest.fail "latest should be seq 3");
  (* torn newest file: latest falls back to the newest one that verifies *)
  let truncated = In_channel.with_open_bin p3 In_channel.input_all in
  let oc = open_out_bin p3 in
  output_string oc (String.sub truncated 0 (String.length truncated / 2));
  close_out oc;
  (match Ckpt.Store.latest st with
  | Some (2, _, c2) ->
      Alcotest.(check (option string)) "fell back to 2" (Some "2")
        (Ckpt.meta c2 "seq")
  | _ -> Alcotest.fail "latest should fall back to seq 2");
  (* overwriting a seq is atomic and wins *)
  ignore (Ckpt.Store.save st ~seq:2 (at 22));
  match Ckpt.Store.latest st with
  | Some (2, _, c2) ->
      Alcotest.(check (option string)) "overwritten" (Some "22")
        (Ckpt.meta c2 "seq")
  | _ -> Alcotest.fail "latest should still be seq 2"

(* ------------------------------------------------------------------ *)
(* Event heap snapshot round-trip (qcheck)                             *)
(* ------------------------------------------------------------------ *)

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 0 120)
      (frequency
         [ (3, map (fun t -> `Add (float_of_int t /. 2.0)) (int_range 0 6));
           (2, return `Pop) ]))

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function `Add t -> Printf.sprintf "add %.1f" t | `Pop -> "pop")
           ops))
    gen_ops

let prop_heap_roundtrip =
  QCheck.Test.make ~name:"entries/of_entries round-trip" ~count:300 arb_ops
    (fun ops ->
      let h = Heap.create () in
      let k = ref 0 in
      List.iter
        (function
          | `Add t ->
              Heap.add h t !k;
              incr k
          | `Pop -> ignore (Heap.pop h))
        ops;
      let h' = Heap.of_entries ~next_seq:(Heap.next_seq h) (Heap.entries h) in
      (* future adds must keep FIFO ties consistent, so the sequence
         counter has to survive the round-trip too *)
      Heap.add h 1.0 (-1);
      Heap.add h' 1.0 (-1);
      Heap.add h 0.5 (-2);
      Heap.add h' 0.5 (-2);
      let drain h =
        let rec go acc =
          match Heap.pop h with None -> List.rev acc | Some e -> go (e :: acc)
        in
        go []
      in
      drain h = drain h')

(* ------------------------------------------------------------------ *)
(* Restore equivalence: every graph x scenario x resume point          *)
(* ------------------------------------------------------------------ *)

let iterations = 3

let valuation_for g =
  List.fold_left
    (fun v p -> Valuation.add p 2 v)
    Valuation.empty (Graph.parameters g)

let scenario_behaviors g scenario =
  let ctrl = Sim.Reconfigure.scenario_control_behavior g scenario in
  List.filter_map
    (fun a -> if Graph.is_control g a then Some (a, ctrl) else None)
    (Graph.actors g)

let run_full ?pool g v scenario =
  let targets =
    List.map (fun a -> (a, 0)) (Sim.Reconfigure.starved_actors g scenario)
  in
  let obs = Obs.create () in
  let eng =
    Engine.create ~graph:g ~valuation:v
      ~behaviors:(scenario_behaviors g scenario)
      ~obs ?pool ~default:0 ()
  in
  let o = Engine.run_outcome ~iterations ~targets ~max_events:50_000 eng in
  (o, Obs.events obs)

(* Uninterrupted run driven with the same chunked pattern as a
   boundary resume: stop at iteration [k], then finish with a second
   [run_outcome] call on the same engine.  The chunk boundary is a
   barrier that stops source run-ahead, so chunked driving is a
   different (still deterministic) schedule from a single call — it is
   the correct reference for boundary restores, while the single-call
   run remains the reference for mid-iteration [until_ms] stops, which
   leave the schedule untouched. *)
let run_chunked ?pool g v scenario ~k =
  let targets =
    List.map (fun a -> (a, 0)) (Sim.Reconfigure.starved_actors g scenario)
  in
  let obs = Obs.create () in
  let eng =
    Engine.create ~graph:g ~valuation:v
      ~behaviors:(scenario_behaviors g scenario)
      ~obs ?pool ~default:0 ()
  in
  match Engine.run_outcome ~iterations:k ~targets ~max_events:50_000 eng with
  | Engine.Completed _ ->
      let o = Engine.run_outcome ~iterations ~targets ~max_events:50_000 eng in
      Some (o, Obs.events obs)
  | _ -> None

(* Run to [stop], persist through the full checkpoint codec (string
   round-trip included), restore into a fresh engine built from the
   *parsed* graph source, and finish the run. *)
let run_resumed ?pool g v scenario ~stop =
  let targets =
    List.map (fun a -> (a, 0)) (Sim.Reconfigure.starved_actors g scenario)
  in
  let obs1 = Obs.create () in
  let eng =
    Engine.create ~graph:g ~valuation:v
      ~behaviors:(scenario_behaviors g scenario)
      ~obs:obs1 ?pool ~default:0 ()
  in
  let reached =
    match stop with
    | `Boundary k -> (
        match Engine.run_outcome ~iterations:k ~targets ~max_events:50_000 eng with
        | Engine.Completed _ -> true
        | _ -> false)
    | `At_ms t -> (
        match
          Engine.run_outcome ~iterations ~targets ~until_ms:t
            ~max_events:50_000 eng
        with
        | Engine.Stalled _ -> Engine.pending_events eng > 0
        | Engine.Completed _ -> false
        | _ -> false)
  in
  if not reached then None
  else begin
    let file =
      {
        Ckpt.kind = "run";
        meta = [];
        graph_src = Serial.to_string g;
        valuation = Valuation.bindings v;
        snapshot = Some (Engine.snapshot ~encode:string_of_int eng);
      }
    in
    let file' =
      match Ckpt.of_string (Ckpt.to_string file) with
      | Ok f -> f
      | Error m -> Alcotest.fail ("checkpoint did not round-trip: " ^ m)
    in
    let g' =
      match Serial.of_string file'.Ckpt.graph_src with
      | Ok g -> g
      | Error m -> Alcotest.fail ("embedded graph did not parse: " ^ m)
    in
    let v' = Valuation.of_list file'.Ckpt.valuation in
    let obs2 = Obs.create () in
    let eng' =
      Engine.restore ~graph:g' ~valuation:v'
        ~behaviors:(scenario_behaviors g' scenario)
        ~obs:obs2 ?pool ~default:0 ~decode:int_of_string
        (Option.get file'.Ckpt.snapshot)
    in
    let o = Engine.run_outcome ~iterations ~targets ~max_events:50_000 eng' in
    Some (o, Obs.events obs1 @ Obs.events obs2)
  end

let check_restore_file ?pool file () =
  let path = Filename.concat graphs_dir file in
  let g =
    match Serial.load path with
    | Ok g -> g
    | Error m -> Alcotest.fail (file ^ ": " ^ m)
  in
  let v = valuation_for g in
  let checked = ref 0 in
  List.iteri
    (fun si scenario ->
      let full_o, full_ev = run_full ?pool g v scenario in
      let stops =
        (match full_o with
        | Engine.Completed stats when stats.Engine.end_ms > 0.0 ->
            [ `At_ms (stats.Engine.end_ms /. 2.0) ]
        | _ -> [])
        @ List.init (iterations - 1) (fun k -> `Boundary (k + 1))
      in
      List.iter
        (fun stop ->
          let reference =
            match stop with
            | `At_ms _ -> Some (full_o, full_ev)
            | `Boundary k -> run_chunked ?pool g v scenario ~k
          in
          match (reference, run_resumed ?pool g v scenario ~stop) with
          | None, _ | _, None -> () (* scenario never reaches that point *)
          | Some (ref_o, ref_ev), Some (o, ev) ->
              incr checked;
              let label =
                Printf.sprintf "%s scenario %d %s" file si
                  (match stop with
                  | `Boundary k -> Printf.sprintf "boundary %d" k
                  | `At_ms t -> Printf.sprintf "mid-iteration at %.3f" t)
              in
              if o <> ref_o then
                Alcotest.fail (label ^ ": outcome diverged after restore");
              if ev <> ref_ev then
                Alcotest.fail (label ^ ": obs streams diverged after restore"))
        stops)
    (Sim.Reconfigure.mode_scenarios g);
  Alcotest.(check bool)
    (file ^ " exercised at least one resume point")
    true (!checked > 0)

let restore_tests =
  List.map
    (fun f -> Alcotest.test_case f `Quick (check_restore_file f))
    graph_files

(* The pooled engine must restore to the same byte-identical stream;
   compare pooled restored runs against the sequential full run. *)
let check_restore_pooled domains file () =
  let pool = Tpdf_par.Pool.create ~domains in
  Fun.protect
    ~finally:(fun () -> Tpdf_par.Pool.shutdown pool)
    (fun () ->
      let path = Filename.concat graphs_dir file in
      let g =
        match Serial.load path with
        | Ok g -> g
        | Error m -> Alcotest.fail (file ^ ": " ^ m)
      in
      let v = valuation_for g in
      List.iteri
        (fun si scenario ->
          let full = run_full g v scenario in
          List.iter
            (fun stop ->
              (* reference is always the *sequential* run with the same
                 driving pattern: pooled restores must match it byte
                 for byte *)
              let reference =
                match stop with
                | `At_ms _ -> Some full
                | `Boundary k -> run_chunked g v scenario ~k
              in
              match (reference, run_resumed ~pool g v scenario ~stop) with
              | None, _ | _, None -> ()
              | Some (ref_o, ref_ev), Some (o, ev) ->
                  let label =
                    Printf.sprintf "%s scenario %d (%d domains)" file si
                      domains
                  in
                  if o <> ref_o then
                    Alcotest.fail (label ^ ": pooled outcome diverged");
                  if ev <> ref_ev then
                    Alcotest.fail (label ^ ": pooled obs stream diverged"))
            [ `Boundary 1; `At_ms 1.5 ])
        (Sim.Reconfigure.mode_scenarios g))

let pooled_tests =
  List.concat_map
    (fun domains ->
      List.map
        (fun f ->
          Alcotest.test_case
            (Printf.sprintf "%s @%d domains" f domains)
            `Quick
            (check_restore_pooled domains f))
        graph_files)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Observability across checkpoint/restore                             *)
(* ------------------------------------------------------------------ *)

(* Counter and histogram totals summed over a split run's collectors.
   Gauges are deliberately excluded: they are instantaneous state
   (engine.steps progress, gc.* readings) that a fresh process
   legitimately re-derives rather than restores. *)
let counter_totals obs_list =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun obs ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace tbl k
            (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        (Metrics.counters (Obs.metrics obs)))
    obs_list;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let histogram_totals obs_list =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun obs ->
      List.iter
        (fun (k, (s : Metrics.histogram_stats)) ->
          let c0, s0 =
            Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl k)
          in
          Hashtbl.replace tbl k (c0 + s.Metrics.count, s0 +. s.Metrics.sum))
        (Metrics.histograms (Obs.metrics obs)))
    obs_list;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Checkpoint mid-run, restore into a fresh engine (full codec
   round-trip in between), finish: the concatenated event streams must
   be byte-identical to the uninterrupted run, and every counter and
   histogram must add up exactly — the rolled window neither loses nor
   double-counts a single firing. *)
let test_obs_survives_restore () =
  let g = fig2_graph () in
  let v = Valuation.of_list [ ("p", 2) ] in
  let iterations = 3 in
  let obs_full = Obs.create () in
  let eng = Engine.create ~graph:g ~valuation:v ~obs:obs_full ~default:0 () in
  let full_stats =
    match Engine.run_outcome ~iterations eng with
    | Engine.Completed s -> s
    | _ -> Alcotest.fail "reference run must complete"
  in
  let obs1 = Obs.create () in
  let eng1 = Engine.create ~graph:g ~valuation:v ~obs:obs1 ~default:0 () in
  let stop = full_stats.Engine.end_ms /. 2.0 in
  (match Engine.run_outcome ~iterations ~until_ms:stop eng1 with
  | Engine.Stalled _ when Engine.pending_events eng1 > 0 -> ()
  | _ -> Alcotest.fail "expected the cap to stop the run mid-iteration");
  let file =
    {
      Ckpt.kind = "run";
      meta = [];
      graph_src = Serial.to_string g;
      valuation = Valuation.bindings v;
      snapshot = Some (Engine.snapshot ~encode:string_of_int eng1);
    }
  in
  let file' =
    match Ckpt.of_string (Ckpt.to_string file) with
    | Ok f -> f
    | Error m -> Alcotest.fail ("checkpoint round-trip: " ^ m)
  in
  let g' =
    match Serial.of_string file'.Ckpt.graph_src with
    | Ok g -> g
    | Error m -> Alcotest.fail ("embedded graph: " ^ m)
  in
  let obs2 = Obs.create () in
  let eng2 =
    Engine.restore ~graph:g'
      ~valuation:(Valuation.of_list file'.Ckpt.valuation)
      ~obs:obs2 ~default:0 ~decode:int_of_string
      (Option.get file'.Ckpt.snapshot)
  in
  (match Engine.run_outcome ~iterations eng2 with
  | Engine.Completed s when s = full_stats -> ()
  | _ -> Alcotest.fail "resumed outcome diverged");
  Alcotest.(check bool) "event streams byte-identical" true
    (Obs.events obs1 @ Obs.events obs2 = Obs.events obs_full);
  Alcotest.(check (list (pair string int))) "counter totals add up exactly"
    (counter_totals [ obs_full ])
    (counter_totals [ obs1; obs2 ]);
  Alcotest.(check (list (pair string (pair int (float 1e-9)))))
    "histogram totals add up exactly"
    (histogram_totals [ obs_full ])
    (histogram_totals [ obs1; obs2 ])

(* ------------------------------------------------------------------ *)
(* Transactional reconfiguration: validate-then-commit                 *)
(* ------------------------------------------------------------------ *)

let test_txn_sequence_abort () =
  let g = fig2_graph () in
  let v n = Valuation.of_list [ ("p", n) ] in
  let obs = Obs.create () in
  let report =
    Sim.Reconfigure.run_sequence ~graph:g ~obs ~txn:true ~default:0
      [ v 2; Valuation.empty; v 3 ]
  in
  Alcotest.(check int) "three iterations" 3
    (List.length report.Sim.Reconfigure.iterations);
  (match report.Sim.Reconfigure.aborts with
  | [ a ] ->
      Alcotest.(check int) "abort index" 1 a.Sim.Reconfigure.abort_index;
      Alcotest.(check bool) "reason names the parameter" true
        (contains a.Sim.Reconfigure.abort_reason "unbound parameter")
  | aborts ->
      Alcotest.fail (Printf.sprintf "expected 1 abort, got %d" (List.length aborts)));
  (* the aborted slot was rolled back to the previous valuation and its
     rerun matches the original committed iteration exactly *)
  (match report.Sim.Reconfigure.iterations with
  | [ it0; it1; it2 ] ->
      Alcotest.(check bool) "rollback used the previous valuation" true
        (it1.Sim.Reconfigure.valuation = v 2);
      Alcotest.(check bool) "rollback stats = committed stats" true
        (it1.Sim.Reconfigure.stats = it0.Sim.Reconfigure.stats);
      Alcotest.(check bool) "third valuation committed" true
        (it2.Sim.Reconfigure.valuation = v 3)
  | _ -> Alcotest.fail "expected three iterations");
  Alcotest.(check int) "txn.begin x3" 3 (count_events obs ~cat:"txn" ~name:"txn.begin");
  Alcotest.(check int) "txn.commit x2" 2 (count_events obs ~cat:"txn" ~name:"txn.commit");
  Alcotest.(check int) "txn.abort x1" 1 (count_events obs ~cat:"txn" ~name:"txn.abort");
  Alcotest.(check int) "reconfigure.aborts counter" 1
    (Metrics.counter (Obs.metrics obs) "reconfigure.aborts")

let test_txn_first_rejected () =
  let g = fig2_graph () in
  match
    Sim.Reconfigure.run_sequence ~graph:g ~txn:true ~default:0
      [ Valuation.empty; Valuation.of_list [ ("p", 2) ] ]
  with
  | exception Failure m ->
      Alcotest.(check bool) "says nothing to roll back to" true
        (contains m "no previous valuation")
  | _ -> Alcotest.fail "initial invalid valuation must fail"

let test_txn_abort_leaves_no_trace () =
  let g = fig2_graph () in
  let v2 = Valuation.of_list [ ("p", 2) ] in
  (* same committed work, with and without an aborted transaction in the
     middle: the metrics the engine collects must agree (nothing of the
     aborted attempt leaks), modulo the abort's own records *)
  let run vals =
    let obs = Obs.create () in
    let r = Sim.Reconfigure.run_sequence ~graph:g ~obs ~txn:true ~default:0 vals in
    (r, obs)
  in
  let _, obs_clean = run [ v2; v2 ] in
  let _, obs_abort = run [ v2; Valuation.empty ] in
  let firing_counter obs =
    Metrics.counter (Obs.metrics obs) "engine.firings"
  in
  Alcotest.(check int) "engine.firings identical"
    (firing_counter obs_clean) (firing_counter obs_abort);
  let engine_events obs =
    List.filter (fun (e : Ev.t) -> e.cat <> "txn") (Obs.events obs)
  in
  Alcotest.(check int) "engine event counts identical"
    (List.length (engine_events obs_clean))
    (List.length (engine_events obs_abort))

let test_txn_scenarios_abort () =
  let g = fig2_graph () in
  let v = Valuation.of_list [ ("p", 2) ] in
  let scenarios = Sim.Reconfigure.mode_scenarios g in
  let good = List.hd scenarios in
  let obs = Obs.create () in
  let report =
    Sim.Reconfigure.run_scenarios ~graph:g ~obs ~txn:true ~valuation:v
      ~default:0
      [ good; [ ("F", "no_such_mode") ]; good ]
  in
  Alcotest.(check int) "three iterations" 3
    (List.length report.Sim.Reconfigure.iterations);
  (match report.Sim.Reconfigure.aborts with
  | [ a ] ->
      Alcotest.(check int) "abort index" 1 a.Sim.Reconfigure.abort_index;
      Alcotest.(check bool) "reason names the mode" true
        (contains a.Sim.Reconfigure.abort_reason "no_such_mode")
  | _ -> Alcotest.fail "expected exactly one abort");
  Alcotest.(check int) "txn.abort instant" 1
    (count_events obs ~cat:"txn" ~name:"txn.abort");
  (* without txn, the same sequence is rejected up front *)
  match
    Sim.Reconfigure.run_scenarios ~graph:g ~valuation:v ~default:0
      [ good; [ ("F", "no_such_mode") ]; good ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-txn run must reject the bad scenario eagerly"

(* ------------------------------------------------------------------ *)
(* Supervisor restart-from-checkpoint                                  *)
(* ------------------------------------------------------------------ *)

(* A QAM behaviour that violates its contract (emits nothing) forces
   Engine.Error on the first iteration under the ambitious default
   scenario.  One restart must roll the attempt back, escalate to the
   degraded pins (QAM starved) and complete — without the rolled-back
   QAM firings in the stream and without double-counted metrics. *)
let restart_run ?pool () =
  let g, _ = Apps.Ofdm_app.tpdf_graph () in
  let v = Apps.Ofdm_app.valuation ~beta:2 ~n:8 ~l:1 in
  let behaviors = [ ("QAM", Behavior.make (fun _ -> [])) ] in
  let policy =
    Fault.Policy.make ~max_restarts:1
      ~fallbacks:(Fault.Chaos.default_fallbacks g) ()
  in
  let obs = Obs.create () in
  let s =
    Fault.Supervisor.run ~graph:g ~plan:Fault.Plan.none ~policy ~obs
      ~behaviors
      ~scenario:(Fault.Chaos.default_scenario g)
      ~iterations:3 ?pool ~encode:string_of_int ~decode:int_of_string
      ~valuation:v ~default:0 ()
  in
  (s, obs)

let test_restart_recovers () =
  let s, obs = restart_run () in
  Alcotest.(check (option string)) "recovered" None s.Fault.Supervisor.unrecovered;
  Alcotest.(check int) "one restart" 1 s.Fault.Supervisor.restarts;
  Alcotest.(check int) "three iterations" 3 s.Fault.Supervisor.iterations_run;
  Alcotest.(check (list (pair string string)))
    "escalated to the degraded pins"
    [ ("DUP", "qpsk"); ("TRAN", "qpsk") ]
    (List.sort compare s.Fault.Supervisor.degrades);
  (* QAM is starved after escalation: no iteration fired it *)
  List.iter
    (fun (it : Engine.stats) ->
      Alcotest.(check int) "QAM silent" 0 (List.assoc "QAM" it.Engine.firings))
    s.Fault.Supervisor.per_iteration;
  (* instrumentation: exactly one restart instant and counter, and the
     rolled-back attempt's QAM firings left no event behind *)
  Alcotest.(check int) "restart instant" 1
    (count_events obs ~cat:"supervisor" ~name:"restart");
  Alcotest.(check int) "supervisor.restarts" 1
    (Metrics.counter (Obs.metrics obs) "supervisor.restarts");
  Alcotest.(check int) "degrade counter not double-counted" 2
    (Metrics.counter (Obs.metrics obs) "supervisor.degrades");
  let qam_events =
    List.filter
      (fun (e : Ev.t) -> e.track = "QAM" || contains e.name "QAM")
      (Obs.events obs)
  in
  Alcotest.(check int) "no rolled-back QAM events" 0 (List.length qam_events)

let test_restart_budget_exhausted () =
  (* max_restarts = 0 keeps the historical behaviour: the failure ends
     the run with the final attempt's events committed *)
  let g, _ = Apps.Ofdm_app.tpdf_graph () in
  let v = Apps.Ofdm_app.valuation ~beta:2 ~n:8 ~l:1 in
  let behaviors = [ ("QAM", Behavior.make (fun _ -> [])) ] in
  let obs = Obs.create () in
  let s =
    Fault.Supervisor.run ~graph:g ~plan:Fault.Plan.none ~obs ~behaviors
      ~scenario:(Fault.Chaos.default_scenario g)
      ~iterations:3 ~valuation:v ~default:0 ()
  in
  (match s.Fault.Supervisor.unrecovered with
  | Some m -> Alcotest.(check bool) "diagnosis kept" true (String.length m > 0)
  | None -> Alcotest.fail "run without a restart budget must not recover");
  Alcotest.(check int) "no restarts" 0 s.Fault.Supervisor.restarts

let test_restart_deterministic_across_domains () =
  let seq_s, seq_obs = restart_run () in
  List.iter
    (fun domains ->
      let pool = Tpdf_par.Pool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Tpdf_par.Pool.shutdown pool)
        (fun () ->
          let s, obs = restart_run ~pool () in
          Alcotest.(check bool)
            (Printf.sprintf "summary identical @%d domains" domains)
            true (s = seq_s);
          Alcotest.(check bool)
            (Printf.sprintf "obs stream identical @%d domains" domains)
            true
            (Obs.events obs = Obs.events seq_obs)))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Supervisor kill / resume equivalence                                *)
(* ------------------------------------------------------------------ *)

let chaos_config g =
  let behaviors =
    List.filter_map
      (fun a ->
        if Graph.is_control g a then None
        else
          Some
            ( a,
              Sim.Behavior.fill 0
                ~duration_ms:(fun _ ->
                  Apps.Ofdm_app.model_cost_ms ~beta:2 ~n:8 a) ))
      (Graph.actors g)
  in
  let policy =
    Fault.Policy.make
      ~deadlines_ms:[ ("QAM", 40.0); ("FFT", 20.0) ]
      ~max_retries:2
      ~fallbacks:(Fault.Chaos.default_fallbacks g) ()
  in
  (behaviors, policy)

let chaos_full ?pool g v =
  let behaviors, policy = chaos_config g in
  let obs = Obs.create () in
  let s =
    Fault.Chaos.run ~graph:g ~seed:42
      ~specs:[ Fault.Fault.spec ~target:"QAM" ~prob:0.8 (Fault.Fault.Overrun 8.0) ]
      ~policy ~iterations:6 ~obs ?pool ~behaviors ~valuation:v ()
  in
  (s, Obs.events obs)

let chaos_killed_resumed ?pool g v ~kill_at_ms =
  let behaviors, policy = chaos_config g in
  let specs =
    [ Fault.Fault.spec ~target:"QAM" ~prob:0.8 (Fault.Fault.Overrun 8.0) ]
  in
  let obs1 = Obs.create () in
  let s1 =
    Fault.Chaos.run ~graph:g ~seed:42 ~specs ~policy ~iterations:6 ~obs:obs1
      ?pool ~behaviors ~valuation:v ~kill_at_ms ()
  in
  match s1.Fault.Supervisor.killed with
  | None -> None
  | Some ck ->
      (* persist through the checkpoint file codec, like tpdf_tool does *)
      let file =
        {
          Ckpt.kind = "chaos";
          meta = Fault.Supervisor.checkpoint_meta ck;
          graph_src = Serial.to_string g;
          valuation = Valuation.bindings v;
          snapshot = ck.Fault.Supervisor.ck_engine;
        }
      in
      let file' =
        match Ckpt.of_string (Ckpt.to_string file) with
        | Ok f -> f
        | Error m -> Alcotest.fail ("chaos checkpoint round-trip: " ^ m)
      in
      let ck' =
        match
          Fault.Supervisor.checkpoint_of_meta ?snapshot:file'.Ckpt.snapshot
            file'.Ckpt.meta
        with
        | Ok ck -> ck
        | Error m -> Alcotest.fail ("checkpoint meta decode: " ^ m)
      in
      Alcotest.(check bool) "checkpoint round-trips" true (ck = ck');
      let obs2 = Obs.create () in
      let s2 =
        Fault.Chaos.run ~graph:g ~seed:42 ~specs ~policy ~iterations:6
          ~obs:obs2 ?pool ~behaviors ~valuation:v ~resume:ck' ()
      in
      Some (s2, Obs.events obs1 @ Obs.events obs2)

(* A resumed summary restores every counter exactly, but
   [per_iteration] only holds the iterations this process ran — the
   checkpoint deliberately carries no per-iteration traces.  So the
   equivalence contract is: all scalar fields equal, and the resumed
   [per_iteration] list is the tail of the uninterrupted one. *)
let summary_matches ~full s =
  let scrub s =
    { s with Fault.Supervisor.killed = None; per_iteration = [] }
  in
  let tail_of l n =
    let len = List.length l in
    if n > len then None else Some (List.filteri (fun i _ -> i >= len - n) l)
  in
  scrub s = scrub full
  && tail_of full.Fault.Supervisor.per_iteration
       (List.length s.Fault.Supervisor.per_iteration)
     = Some s.Fault.Supervisor.per_iteration

let test_chaos_kill_resume () =
  let g, _ = Apps.Ofdm_app.tpdf_graph () in
  let v = Apps.Ofdm_app.valuation ~beta:2 ~n:8 ~l:1 in
  let full_s, full_ev = chaos_full g v in
  Alcotest.(check bool) "full run recovered" true (Fault.Chaos.recovered full_s);
  let total = full_s.Fault.Supervisor.total_end_ms in
  Alcotest.(check bool) "run long enough to kill" true (total > 1.0);
  let kills = ref 0 in
  (* kill at boundaries and mid-iteration across the whole timeline *)
  List.iter
    (fun frac ->
      match chaos_killed_resumed g v ~kill_at_ms:(frac *. total) with
      | None -> ()
      | Some (s, ev) ->
          incr kills;
          let label = Printf.sprintf "kill at %.0f%%" (frac *. 100.0) in
          if s.Fault.Supervisor.killed <> None then
            Alcotest.fail (label ^ ": resumed run was killed again");
          Alcotest.(check bool)
            (label ^ ": summary matches uninterrupted")
            true (summary_matches ~full:full_s s);
          Alcotest.(check bool)
            (label ^ ": obs stream matches uninterrupted")
            true (ev = full_ev))
    [ 0.15; 0.33; 0.5; 0.65; 0.8 ];
  Alcotest.(check bool) "killed at least twice" true (!kills >= 2)

let test_chaos_kill_resume_pooled () =
  let g, _ = Apps.Ofdm_app.tpdf_graph () in
  let v = Apps.Ofdm_app.valuation ~beta:2 ~n:8 ~l:1 in
  let full_s, full_ev = chaos_full g v in
  let total = full_s.Fault.Supervisor.total_end_ms in
  List.iter
    (fun domains ->
      let pool = Tpdf_par.Pool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Tpdf_par.Pool.shutdown pool)
        (fun () ->
          match chaos_killed_resumed ~pool g v ~kill_at_ms:(0.5 *. total) with
          | None -> Alcotest.fail "pooled kill did not land"
          | Some (s, ev) ->
              Alcotest.(check bool)
                (Printf.sprintf "pooled summary @%d domains" domains)
                true (summary_matches ~full:full_s s);
              Alcotest.(check bool)
                (Printf.sprintf "pooled obs stream @%d domains" domains)
                true (ev = full_ev)))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ckpt"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "bad atoms rejected" `Quick
            test_codec_rejects_bad_atoms;
          Alcotest.test_case "fnv1a64 vectors" `Quick test_fnv_vector;
          Alcotest.test_case "torn-write torture" `Quick test_torn_torture;
        ] );
      ("store", [ Alcotest.test_case "latest-valid fallback" `Quick test_store ]);
      ("heap", [ QCheck_alcotest.to_alcotest prop_heap_roundtrip ]);
      ("restore-equiv", restore_tests);
      ( "obs-equiv",
        [
          Alcotest.test_case "metric totals + streams survive restore" `Quick
            test_obs_survives_restore;
        ] );
      ("restore-equiv-pooled", pooled_tests);
      ( "txn",
        [
          Alcotest.test_case "sequence abort + rollback" `Quick
            test_txn_sequence_abort;
          Alcotest.test_case "first valuation rejected" `Quick
            test_txn_first_rejected;
          Alcotest.test_case "abort leaves no trace" `Quick
            test_txn_abort_leaves_no_trace;
          Alcotest.test_case "scenario abort + rollback" `Quick
            test_txn_scenarios_abort;
        ] );
      ( "restart",
        [
          Alcotest.test_case "rollback + escalate + recover" `Quick
            test_restart_recovers;
          Alcotest.test_case "budget exhausted keeps diagnosis" `Quick
            test_restart_budget_exhausted;
          Alcotest.test_case "deterministic at 1/2/4 domains" `Quick
            test_restart_deterministic_across_domains;
        ] );
      ( "kill-resume",
        [
          Alcotest.test_case "chaos kill/resume equivalence" `Quick
            test_chaos_kill_resume;
          Alcotest.test_case "pooled kill/resume" `Quick
            test_chaos_kill_resume_pooled;
        ] );
    ]
