open Tpdf_core
open Tpdf_sim
open Tpdf_param
module Csdf = Tpdf_csdf

let c = Csdf.Graph.const_rates

(* ------------------------------------------------------------------ *)
(* Plain pipeline                                                      *)
(* ------------------------------------------------------------------ *)

let pipeline () =
  let g = Graph.create () in
  Graph.add_kernel g "SRC";
  Graph.add_kernel g "MID";
  Graph.add_kernel g "SNK";
  let e1 = Graph.add_channel g ~src:"SRC" ~dst:"MID" ~prod:(c [ 2 ]) ~cons:(c [ 1 ]) () in
  let e2 = Graph.add_channel g ~src:"MID" ~dst:"SNK" ~prod:(c [ 1 ]) ~cons:(c [ 2 ]) () in
  (g, e1, e2)

let test_pipeline_counts () =
  let g, _, _ = pipeline () in
  let eng =
    Engine.create ~graph:g ~valuation:Valuation.empty ~default:0 ()
  in
  let stats = Engine.run ~iterations:3 eng in
  Alcotest.(check (list (pair string int))) "firing counts follow 3*q"
    [ ("SRC", 3); ("MID", 6); ("SNK", 3) ]
    stats.Engine.firings;
  Alcotest.(check bool) "time advanced" true (stats.Engine.end_ms > 0.0)

let test_pipeline_payloads () =
  let g, _, e2 = pipeline () in
  let seen = ref [] in
  let behaviors =
    [
      ( "SRC",
        Behavior.make (fun ctx ->
            List.map
              (fun (ch, rate) ->
                (ch, List.init rate (fun i -> Token.Data ((10 * ctx.Behavior.index) + i))))
              ctx.Behavior.out_rates) );
      ( "MID",
        Behavior.make (fun ctx ->
            let v =
              match ctx.Behavior.inputs with
              | [ (_, [ Token.Data v ]) ] -> v
              | _ -> Alcotest.fail "MID expects one data token"
            in
            List.map
              (fun (ch, rate) ->
                (ch, List.init rate (fun _ -> Token.Data (v + 1))))
              ctx.Behavior.out_rates) );
      ( "SNK",
        Behavior.sink (fun ctx ->
            List.iter
              (fun (_, toks) ->
                List.iter (fun t -> seen := Token.data t :: !seen) toks)
              ctx.Behavior.inputs) );
    ]
  in
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~default:0 () in
  let (_ : Engine.stats) = Engine.run eng in
  ignore e2;
  Alcotest.(check (list int)) "SNK saw incremented stream" [ 1; 2 ] (List.rev !seen)

let test_deadlocked_runtime () =
  let g = Graph.create () in
  Graph.add_kernel g "X";
  Graph.add_kernel g "Y";
  ignore (Graph.add_channel g ~src:"X" ~dst:"Y" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  ignore (Graph.add_channel g ~src:"Y" ~dst:"X" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~default:() () in
  match Engine.run eng with
  | exception Failure msg ->
      Alcotest.(check bool) "mentions stall" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "deadlock expected"

(* ------------------------------------------------------------------ *)
(* Fig. 2 at run time                                                  *)
(* ------------------------------------------------------------------ *)

let test_fig2_runtime () =
  let { Examples.graph = g; e } = Examples.fig2 () in
  let v = Valuation.of_list [ ("p", 2) ] in
  let eng = Engine.create ~graph:g ~valuation:v ~default:0 () in
  let stats = Engine.run eng in
  (* q = [2, 2p, p, p, 2p, 2p] at p=2 *)
  Alcotest.(check (list (pair string int))) "firings = q"
    [ ("A", 2); ("B", 4); ("C", 2); ("D", 2); ("E", 4); ("F", 4) ]
    stats.Engine.firings;
  (* Default control behaviour picks F's first mode (take_e6), so the four
     tokens E pushed on e7 are rejected. *)
  Alcotest.(check int) "e7 tokens dropped" 4
    (List.assoc e.(6) stats.Engine.dropped);
  Alcotest.(check int) "e6 tokens consumed, none dropped" 0
    (List.assoc e.(5) stats.Engine.dropped)

let test_fig2_mode_switch () =
  let { Examples.graph = g; e } = Examples.fig2 () in
  let v = Valuation.of_list [ ("p", 2) ] in
  (* C alternates between F's modes on successive firings. *)
  let behaviors =
    [
      ( "C",
        Behavior.emit_mode (fun ctx ->
            if ctx.Behavior.index mod 2 = 0 then "take_e6" else "take_e7") );
    ]
  in
  let eng = Engine.create ~graph:g ~valuation:v ~behaviors ~default:0 () in
  let stats = Engine.run eng in
  (* Both branches get used and both see some rejection. *)
  let dropped6 = List.assoc e.(5) stats.Engine.dropped in
  let dropped7 = List.assoc e.(6) stats.Engine.dropped in
  Alcotest.(check int) "half of e6 dropped" 2 dropped6;
  Alcotest.(check int) "half of e7 dropped" 2 dropped7

(* ------------------------------------------------------------------ *)
(* Clock + Transaction: highest priority at a deadline                 *)
(* ------------------------------------------------------------------ *)

(* SRC fans out to a fast low-quality kernel and a slow high-quality one;
   a clock fires the Transaction box T, which picks the best result
   available at the deadline — the edge-detection pattern of §IV-A. *)
let deadline_graph ~period =
  let g = Graph.create () in
  Graph.add_kernel g "SRC";
  Graph.add_kernel g "FAST";
  Graph.add_kernel g "SLOW";
  Graph.add_kernel g ~kind:Graph.Transaction "T";
  Graph.add_control g ~clock_period_ms:period "CLK";
  ignore (Graph.add_channel g ~src:"SRC" ~dst:"FAST" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  ignore (Graph.add_channel g ~src:"SRC" ~dst:"SLOW" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  let ft =
    Graph.add_channel g ~src:"FAST" ~dst:"T" ~prod:(c [ 1 ]) ~cons:(c [ 1 ])
      ~priority:1 ()
  in
  let st =
    Graph.add_channel g ~src:"SLOW" ~dst:"T" ~prod:(c [ 1 ]) ~cons:(c [ 1 ])
      ~priority:2 ()
  in
  ignore
    (Graph.add_control_channel g ~src:"CLK" ~dst:"T" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  Graph.set_modes g "T"
    [ Mode.make ~inputs:Mode.Highest_priority_available "deadline" ];
  (g, ft, st)

let run_deadline ~period =
  let g, ft, st = deadline_graph ~period in
  let winner = ref None in
  let behaviors =
    [
      ("SRC", Behavior.fill ~duration_ms:(Behavior.const_duration 0.1) 0);
      ("FAST", Behavior.fill ~duration_ms:(Behavior.const_duration 1.0) 1);
      ("SLOW", Behavior.fill ~duration_ms:(Behavior.const_duration 10.0) 2);
      ( "T",
        Behavior.sink (fun ctx ->
            match ctx.Behavior.inputs with
            | [ (ch, [ Token.Data _ ]) ] ->
                winner := Some (if ch = ft then `Fast else if ch = st then `Slow else `Other)
            | _ -> Alcotest.fail "T expects exactly one selected input") );
      ("CLK", Behavior.emit_mode (fun _ -> "deadline"));
    ]
  in
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~default:0 () in
  let stats = Engine.run eng in
  (!winner, stats)

let test_deadline_picks_fast_when_tight () =
  (* Tick at 5 ms: only FAST (done at 1.1) is ready; SLOW finishes at 10.1. *)
  let winner, _ = run_deadline ~period:5.0 in
  match winner with
  | Some `Fast -> ()
  | _ -> Alcotest.fail "expected the fast result at a tight deadline"

let test_deadline_picks_best_when_loose () =
  (* Tick at 15 ms: both ready; SLOW has the higher priority. *)
  let winner, stats = run_deadline ~period:15.0 in
  (match winner with
  | Some `Slow -> ()
  | _ -> Alcotest.fail "expected the high-priority result at a loose deadline");
  (* the rejected fast token was discarded *)
  let total_dropped = List.fold_left (fun acc (_, n) -> acc + n) 0 stats.Engine.dropped in
  Alcotest.(check int) "one rejected token" 1 total_dropped

let test_trace_is_ordered () =
  let _, stats = run_deadline ~period:5.0 in
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        a.Engine.start_ms <= b.Engine.start_ms && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "trace sorted by start" true (ordered stats.Engine.trace);
  Alcotest.(check bool) "trace non-empty" true (stats.Engine.trace <> [])

let test_determinism () =
  let w1, s1 = run_deadline ~period:5.0 in
  let w2, s2 = run_deadline ~period:5.0 in
  Alcotest.(check bool) "same winner" true (w1 = w2);
  Alcotest.(check bool) "same end time" true (s1.Engine.end_ms = s2.Engine.end_ms);
  Alcotest.(check bool) "same firing counts" true
    (s1.Engine.firings = s2.Engine.firings)

(* ------------------------------------------------------------------ *)
(* Behaviour validation                                                *)
(* ------------------------------------------------------------------ *)

let test_bad_behavior_rate () =
  let g, _, _ = pipeline () in
  let behaviors = [ ("SRC", Behavior.make (fun _ -> [])) ] in
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~default:0 () in
  match Engine.run eng with
  | exception Failure msg ->
      Alcotest.(check bool) "explains rate mismatch" true
        (String.length msg > 10)
  | _ -> Alcotest.fail "wrong token count accepted"

let test_until_ms_cap () =
  let g, _, _ = pipeline () in
  let behaviors =
    [ ("SRC", Behavior.fill ~duration_ms:(Behavior.const_duration 100.0) 0) ]
  in
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~default:0 () in
  match Engine.run ~until_ms:10.0 eng with
  | exception Failure _ -> () (* stalls because SRC never completes in time *)
  | _ -> Alcotest.fail "time cap should cut the run short"

(* ------------------------------------------------------------------ *)
(* Select-duplicate output rejection (Fig. 3 semantics)                *)
(* ------------------------------------------------------------------ *)

let test_select_duplicate_runtime () =
  (* Fig. 3 coordinated run: C steers B's output and F's input together,
     alternating branches per iteration.  Each side branch fires only when
     its path is selected. *)
  let g = Examples.fig3 () in
  (match Graph.validate g with
  | Ok () -> ()
  | Error m -> Alcotest.fail (String.concat "; " m));
  let behaviors =
    [
      ( "C",
        Behavior.emit_mode (fun ctx ->
            (* the emitted name must match the receiving kernel's modes;
               B's and F's mode names differ, so emit per-channel *)
            ignore ctx;
            "unused") );
    ]
  in
  ignore behaviors;
  (* C must emit different mode names to B and F: use a custom work. *)
  let skel = Graph.skeleton g in
  let c_behavior =
    Behavior.make (fun ctx ->
        (* the two control targets use different mode vocabularies *)
        List.map
          (fun (ch, rate) ->
            let e = Csdf.Graph.channel skel ch in
            let name =
              match e.Tpdf_graph.Digraph.dst with
              | "B" -> "to_d"
              | "F" -> "from_d"
              | _ -> Alcotest.fail "unexpected control target"
            in
            (ch, List.init rate (fun _ -> Token.Ctrl name)))
          ctx.Behavior.out_rates)
  in
  let eng =
    Engine.create ~graph:g ~valuation:Valuation.empty
      ~behaviors:[ ("C", c_behavior) ]
      ~default:0 ()
  in
  (* the selected branch D fires every iteration; E never does *)
  let stats = Engine.run ~iterations:3 ~targets:[ ("E", 0) ] eng in
  Alcotest.(check int) "D fired" 3 (List.assoc "D" stats.Engine.firings);
  Alcotest.(check int) "E idle" 0 (List.assoc "E" stats.Engine.firings);
  Alcotest.(check int) "F followed" 3 (List.assoc "F" stats.Engine.firings)

let test_output_subset_suppresses_branch () =
  (* SRC --ctrl--> DUP with two output branches; mode selects one: the
     other branch's kernel must never fire and needs no tokens. *)
  let g = Graph.create () in
  Graph.add_kernel g "SRC";
  Graph.add_kernel g ~kind:Graph.Select_duplicate "DUP";
  Graph.add_kernel g "L";
  Graph.add_kernel g "R";
  Graph.add_control g "CTL";
  ignore (Graph.add_channel g ~src:"SRC" ~dst:"DUP" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  ignore (Graph.add_channel g ~src:"SRC" ~dst:"CTL" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  let dl = Graph.add_channel g ~src:"DUP" ~dst:"L" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) () in
  let dr = Graph.add_channel g ~src:"DUP" ~dst:"R" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) () in
  ignore (Graph.add_control_channel g ~src:"CTL" ~dst:"DUP" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  Graph.set_modes g "DUP"
    [
      Mode.make ~outputs:(Mode.Output_subset [ dl ]) "left";
      Mode.make ~outputs:(Mode.Output_subset [ dr ]) "right";
    ];
  let eng =
    Engine.create ~graph:g ~valuation:Valuation.empty
      ~behaviors:[ ("CTL", Behavior.emit_mode (fun _ -> "left")) ]
      ~default:0 ()
  in
  let stats = Engine.run ~iterations:3 ~targets:[ ("R", 0) ] eng in
  Alcotest.(check int) "L fired" 3 (List.assoc "L" stats.Engine.firings);
  Alcotest.(check int) "R never fired" 0 (List.assoc "R" stats.Engine.firings);
  (* nothing was ever produced on the right branch *)
  Alcotest.(check int) "right branch empty" 0 (List.assoc dr stats.Engine.max_occupancy)

(* ------------------------------------------------------------------ *)
(* Mode persistence across control-rate-0 phases                       *)
(* ------------------------------------------------------------------ *)

let test_mode_persists_when_control_rate_zero () =
  (* K has two phases; the control port delivers a token only on phase 0,
     so phase 1 must reuse the mode selected for phase 0. *)
  let g = Graph.create () in
  Graph.add_kernel g "S1";
  Graph.add_kernel g "S2";
  Graph.add_kernel g ~phases:2 ~kind:Graph.Transaction "K";
  Graph.add_control g "CTL";
  Graph.add_kernel g "FEED";
  ignore (Graph.add_channel g ~src:"FEED" ~dst:"CTL" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  let s1k = Graph.add_channel g ~src:"S1" ~dst:"K" ~prod:(c [ 2 ]) ~cons:(c [ 1; 1 ]) () in
  let s2k = Graph.add_channel g ~src:"S2" ~dst:"K" ~prod:(c [ 2 ]) ~cons:(c [ 1; 1 ]) () in
  ignore
    (Graph.add_control_channel g ~src:"CTL" ~dst:"K" ~prod:(c [ 1 ]) ~cons:(c [ 1; 0 ]) ());
  Graph.set_modes g "K"
    [
      Mode.make ~inputs:(Mode.Input_subset [ s1k ]) "one";
      Mode.make ~inputs:(Mode.Input_subset [ s2k ]) "two";
    ];
  let modes_seen = ref [] in
  let behaviors =
    [
      ("CTL", Behavior.emit_mode (fun _ -> "two"));
      ( "K",
        Behavior.sink (fun ctx -> modes_seen := ctx.Behavior.mode :: !modes_seen) );
    ]
  in
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~default:0 () in
  let stats = Engine.run eng in
  Alcotest.(check int) "K fired twice" 2 (List.assoc "K" stats.Engine.firings);
  Alcotest.(check (list string)) "mode persisted on phase 1" [ "two"; "two" ]
    (List.rev !modes_seen);
  (* the unselected S1 tokens were rejected *)
  Alcotest.(check int) "S1 tokens dropped" 2 (List.assoc s1k stats.Engine.dropped)

(* ------------------------------------------------------------------ *)
(* Engine guards                                                       *)
(* ------------------------------------------------------------------ *)

let test_max_events_guard () =
  let g, _, _ = pipeline () in
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~default:0 () in
  match Engine.run ~iterations:100 ~max_events:3 eng with
  | exception Failure msg ->
      Alcotest.(check bool) "mentions budget" true (String.length msg > 10)
  | _ -> Alcotest.fail "event budget ignored"

let test_custom_init_tokens () =
  (* channel with initial tokens gets caller-provided payloads *)
  let g = Graph.create () in
  Graph.add_kernel g "SNK2";
  Graph.add_kernel g "SRC2";
  let e =
    Graph.add_channel g ~src:"SRC2" ~dst:"SNK2" ~prod:(c [ 1 ]) ~cons:(c [ 1 ])
      ~init:2 ()
  in
  let seen = ref [] in
  let behaviors =
    [
      ( "SNK2",
        Behavior.sink (fun ctx ->
            List.iter
              (fun (_, toks) -> List.iter (fun t -> seen := Token.data t :: !seen) toks)
              ctx.Behavior.inputs) );
    ]
  in
  let eng =
    Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors
      ~init_token:(fun ch i ->
        Alcotest.(check int) "only channel e" e ch;
        Token.Data (100 + i))
      ~default:0 ()
  in
  (* q = [1,1]: one source firing, one sink firing; the sink's first token
     is the first initial token *)
  let (_ : Engine.stats) = Engine.run eng in
  Alcotest.(check bool) "saw an initial token" true (List.mem 100 !seen)

(* ------------------------------------------------------------------ *)
(* Trace rendering                                                     *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_trace_gantt () =
  let _, stats = run_deadline ~period:5.0 in
  let s = Trace.gantt stats in
  List.iter
    (fun a -> Alcotest.(check bool) (a ^ " row present") true (contains s a))
    [ "SRC"; "FAST"; "SLOW"; "T"; "CLK" ];
  Alcotest.(check bool) "clock tick marked" true (contains s "|");
  Alcotest.(check bool) "busy bars drawn" true (contains s "#")

let test_trace_csv () =
  let _, stats = run_deadline ~period:5.0 in
  let s = Trace.to_csv stats in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check string) "header" "actor,index,phase,mode,start_ms,finish_ms"
    (List.hd lines);
  Alcotest.(check int) "one line per firing" (List.length stats.Engine.trace)
    (List.length lines - 1);
  Alcotest.(check bool) "mode recorded" true (contains s ",deadline,")

(* ------------------------------------------------------------------ *)
(* Typed outcomes                                                      *)
(* ------------------------------------------------------------------ *)

let test_outcome_stalled () =
  let g = Graph.create () in
  Graph.add_kernel g "X";
  Graph.add_kernel g "Y";
  ignore (Graph.add_channel g ~src:"X" ~dst:"Y" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  ignore (Graph.add_channel g ~src:"Y" ~dst:"X" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~default:() () in
  match Engine.run_outcome eng with
  | Engine.Stalled (s, stats) ->
      Alcotest.(check (list (pair string int))) "nothing fired"
        [ ("X", 0); ("Y", 0) ]
        stats.Engine.firings;
      Alcotest.(check int) "both actors diagnosed" 2
        (List.length s.Engine.blocked_actors);
      List.iter
        (fun (_, got, want) ->
          Alcotest.(check int) "0 completed" 0 got;
          Alcotest.(check int) "1 required" 1 want)
        s.Engine.blocked_actors;
      Alcotest.(check bool) "diagnosis renders" true
        (contains (Format.asprintf "%a" Engine.pp_stall s) "stalled")
  | _ -> Alcotest.fail "expected Stalled"

let test_outcome_budget () =
  (* a self-loop with 2 initial tokens consuming/producing 1 never finishes
     within 3 events when asked for many iterations *)
  let g = Graph.create () in
  Graph.add_kernel g "A";
  ignore (Graph.add_channel g ~src:"A" ~dst:"A" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ~init:1 ());
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~default:0 () in
  match Engine.run_outcome ~iterations:100 ~max_events:3 eng with
  | Engine.Budget_exceeded { steps; partial; _ } ->
      Alcotest.(check bool) "steps beyond budget" true (steps > 3);
      Alcotest.(check bool) "partial progress recorded" true
        (List.assoc "A" partial.Engine.firings > 0)
  | _ -> Alcotest.fail "expected Budget_exceeded"

let test_outcome_completed_matches_run () =
  let g, _, _ = pipeline () in
  let mk () = Engine.create ~graph:g ~valuation:Valuation.empty ~default:0 () in
  let stats = Engine.run ~iterations:2 (mk ()) in
  match Engine.run_outcome ~iterations:2 (mk ()) with
  | Engine.Completed stats' ->
      Alcotest.(check (list (pair string int))) "same firings"
        stats.Engine.firings stats'.Engine.firings
  | _ -> Alcotest.fail "expected Completed"

let test_targets_validated () =
  let g, _, _ = pipeline () in
  let check_invalid name targets =
    let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~default:0 () in
    match Engine.run ~targets eng with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": Invalid_argument expected")
  in
  check_invalid "unknown actor" [ ("NOPE", 1) ];
  check_invalid "negative count" [ ("MID", -1) ]

let () =
  Alcotest.run "sim"
    [
      ( "pipeline",
        [
          Alcotest.test_case "firing counts" `Quick test_pipeline_counts;
          Alcotest.test_case "payloads" `Quick test_pipeline_payloads;
          Alcotest.test_case "runtime deadlock" `Quick test_deadlocked_runtime;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "default run" `Quick test_fig2_runtime;
          Alcotest.test_case "mode switch" `Quick test_fig2_mode_switch;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "tight deadline" `Quick test_deadline_picks_fast_when_tight;
          Alcotest.test_case "loose deadline" `Quick test_deadline_picks_best_when_loose;
          Alcotest.test_case "trace ordering" `Quick test_trace_is_ordered;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "modes",
        [
          Alcotest.test_case "fig3 validation" `Quick test_select_duplicate_runtime;
          Alcotest.test_case "output subset" `Quick test_output_subset_suppresses_branch;
          Alcotest.test_case "mode persistence" `Quick test_mode_persists_when_control_rate_zero;
        ] );
      ( "guards",
        [
          Alcotest.test_case "max events" `Quick test_max_events_guard;
          Alcotest.test_case "custom init tokens" `Quick test_custom_init_tokens;
        ] );
      ( "trace",
        [
          Alcotest.test_case "gantt" `Quick test_trace_gantt;
          Alcotest.test_case "csv" `Quick test_trace_csv;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "stalled diagnosis" `Quick test_outcome_stalled;
          Alcotest.test_case "budget exceeded" `Quick test_outcome_budget;
          Alcotest.test_case "completed matches run" `Quick
            test_outcome_completed_matches_run;
          Alcotest.test_case "targets validated" `Quick test_targets_validated;
        ] );
      ( "validation",
        [
          Alcotest.test_case "bad rate" `Quick test_bad_behavior_rate;
          Alcotest.test_case "until_ms" `Quick test_until_ms_cap;
        ] );
    ]
