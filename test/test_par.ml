(* Tests for lib/par (Pool): the deterministic domain pool underneath
   the parallel engine and the data-parallel kernels.  The contract under
   test: results in task-index order, ascending-chunk merges equal to the
   sequential fold, every task attempted with the lowest-indexed
   exception re-raised, and shutdown that joins all workers and degrades
   the pool to inline execution. *)

module Pool = Tpdf_par.Pool

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let test_create_invalid () =
  Alcotest.check_raises "domains=0 rejected"
    (Invalid_argument "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0))

let test_domains_accessor () =
  with_pool ~domains:3 @@ fun pool ->
  Alcotest.(check int) "configured parallelism" 3 (Pool.domains pool);
  Alcotest.(check bool) "recommended >= 1" true (Pool.recommended () >= 1)

(* ------------------------------------------------------------------ *)
(* run: index order and exception contract                             *)
(* ------------------------------------------------------------------ *)

let test_run_index_order () =
  with_pool ~domains:4 @@ fun pool ->
  let n = 64 in
  let out = Pool.run pool (Array.init n (fun i () -> i * i)) in
  Alcotest.(check (array int))
    "results in task-index order"
    (Array.init n (fun i -> i * i))
    out

let test_run_empty () =
  with_pool ~domains:2 @@ fun pool ->
  Alcotest.(check (array int)) "empty batch" [||] (Pool.run pool [||])

let test_run_exception_lowest_wins () =
  with_pool ~domains:4 @@ fun pool ->
  let attempted = Array.make 8 false in
  let tasks =
    Array.init 8 (fun i () ->
        attempted.(i) <- true;
        if i = 2 || i = 5 then failwith (Printf.sprintf "task %d" i))
  in
  (match Pool.run pool tasks with
  | _ -> Alcotest.fail "expected a Failure"
  | exception Failure m ->
      Alcotest.(check string) "lowest-indexed exception wins" "task 2" m);
  Alcotest.(check (array bool))
    "every task attempted despite failures" (Array.make 8 true) attempted;
  (* the pool must still be healthy: no hung workers, no poisoned state *)
  let again = Pool.run pool (Array.init 4 (fun i () -> i + 1)) in
  Alcotest.(check (array int)) "pool usable after a failing batch"
    [| 1; 2; 3; 4 |] again

let test_run_not_reentrant () =
  with_pool ~domains:2 @@ fun pool ->
  match
    Pool.run pool
      [| (fun () -> ignore (Pool.run pool [| (fun () -> 0) |] : int array)) |]
  with
  | _ ->
      (* A single-task batch runs inline, and a nested single-task batch
         is inline too — that is allowed.  Force a real nested batch: *)
      (match
         Pool.run pool
           (Array.init 2 (fun i () ->
                if i = 0 then
                  ignore (Pool.run pool (Array.init 2 (fun j () -> j)))))
       with
      | _ -> Alcotest.fail "nested run did not raise"
      | exception Invalid_argument _ -> ())
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* shutdown                                                            *)
(* ------------------------------------------------------------------ *)

let test_shutdown_degrades_to_inline () =
  let pool = Pool.create ~domains:4 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  let out = Pool.run pool (Array.init 16 (fun i () -> 2 * i)) in
  Alcotest.(check (array int))
    "inline after shutdown"
    (Array.init 16 (fun i -> 2 * i))
    out;
  let sum =
    Pool.parallel_for_reduce pool ~lo:0 ~hi:100 ~init:0
      ~body:(fun acc i -> acc + i)
      ~merge:( + )
  in
  Alcotest.(check int) "reduce after shutdown" 4950 sum

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 in
  (* Use the pool before the first shutdown so workers are warm. *)
  ignore (Pool.run pool (Array.init 8 (fun i () -> i)));
  Pool.shutdown pool;
  (* Any number of further shutdowns must be harmless no-ops. *)
  for _ = 1 to 5 do
    Pool.shutdown pool
  done;
  Alcotest.(check int) "accessor survives shutdown" 3 (Pool.domains pool);
  (* Post-shutdown submissions degrade to inline but keep the full
     contract: index order, range coverage, exception propagation. *)
  let out = Pool.run pool (Array.init 8 (fun i () -> i * 3)) in
  Alcotest.(check (array int))
    "run inline, index order"
    (Array.init 8 (fun i -> i * 3))
    out;
  let n = 50 in
  let hits = Array.make n 0 in
  Pool.parallel_for ~chunk:7 pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int))
    "parallel_for inline covers the range" (Array.make n 1) hits;
  (match Pool.run pool [| (fun () -> failwith "boom") |] with
  | _ -> Alcotest.fail "expected a Failure"
  | exception Failure m ->
      Alcotest.(check string) "exception still propagates inline" "boom" m);
  Pool.shutdown pool

let test_parallel_for_empty_ranges () =
  let never _ = Alcotest.fail "body called on an empty range" in
  let check_empty pool =
    Pool.parallel_for pool ~lo:0 ~hi:0 never;
    Pool.parallel_for pool ~lo:5 ~hi:5 never;
    Pool.parallel_for pool ~lo:10 ~hi:3 never;
    Pool.parallel_for ~chunk:4 pool ~lo:(-3) ~hi:(-7) never;
    Alcotest.(check int) "reduce on an empty range returns init" 42
      (Pool.parallel_for_reduce pool ~lo:9 ~hi:9 ~init:42 ~body:never
         ~merge:(fun _ _ -> Alcotest.fail "merge called on an empty range"));
    (* Argument validation is not skipped just because the range is
       empty — a bad chunk is a bug wherever it appears. *)
    Alcotest.check_raises "chunk=0 rejected on empty range"
      (Invalid_argument "Pool: chunk must be >= 1") (fun () ->
        Pool.parallel_for ~chunk:0 pool ~lo:3 ~hi:3 never)
  in
  with_pool ~domains:2 check_empty;
  (* Same behavior once the pool has degraded to inline. *)
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  check_empty pool

(* ------------------------------------------------------------------ *)
(* parallel_for                                                        *)
(* ------------------------------------------------------------------ *)

let test_parallel_for_covers_range () =
  with_pool ~domains:4 @@ fun pool ->
  let n = 1000 in
  let hits = Array.make n 0 in
  (* disjoint writes: each index is touched by exactly one chunk *)
  Pool.parallel_for ~chunk:7 pool ~lo:0 ~hi:n (fun i ->
      hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each index exactly once" (Array.make n 1) hits;
  Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "empty range");
  Alcotest.check_raises "chunk=0 rejected"
    (Invalid_argument "Pool: chunk must be >= 1") (fun () ->
      Pool.parallel_for ~chunk:0 pool ~lo:0 ~hi:10 ignore)

(* ------------------------------------------------------------------ *)
(* parallel_for_reduce = sequential fold (qcheck)                      *)
(* ------------------------------------------------------------------ *)

(* Integer sums and list concatenation are exact, so "equals the
   sequential fold" is byte-equality, not approximation.  Domain and
   chunk counts are arbitrary; the pool is created per case and shut
   down so no domains leak across the 200 runs. *)
let arb_reduce_case =
  QCheck.make
    ~print:(fun (domains, chunk, lo, len) ->
      Printf.sprintf "domains=%d chunk=%s lo=%d len=%d" domains
        (match chunk with Some c -> string_of_int c | None -> "auto")
        lo len)
    QCheck.Gen.(
      quad (int_range 1 6)
        (opt (int_range 1 50))
        (int_range (-20) 20) (int_range 0 300))

let prop_reduce_matches_fold =
  QCheck.Test.make ~name:"parallel_for_reduce sum = fold_left" ~count:200
    arb_reduce_case (fun (domains, chunk, lo, len) ->
      let hi = lo + len in
      with_pool ~domains @@ fun pool ->
      let par =
        Pool.parallel_for_reduce ?chunk pool ~lo ~hi ~init:0
          ~body:(fun acc i -> acc + (i * i) + 3)
          ~merge:( + )
      in
      let seq = ref 0 in
      for i = lo to hi - 1 do
        seq := !seq + (i * i) + 3
      done;
      par = !seq)

let prop_reduce_preserves_order =
  QCheck.Test.make
    ~name:"parallel_for_reduce concat visits indices in order" ~count:100
    arb_reduce_case (fun (domains, chunk, lo, len) ->
      let hi = lo + len in
      with_pool ~domains @@ fun pool ->
      let par =
        Pool.parallel_for_reduce ?chunk pool ~lo ~hi ~init:[]
          ~body:(fun acc i -> acc @ [ i ])
          ~merge:( @ )
      in
      par = List.init len (fun k -> lo + k))

let prop_parallel_for_sums =
  QCheck.Test.make ~name:"parallel_for hits every index once" ~count:100
    arb_reduce_case (fun (domains, chunk, lo, len) ->
      let hi = lo + len in
      with_pool ~domains @@ fun pool ->
      let hits = Array.make (max len 1) 0 in
      Pool.parallel_for ?chunk pool ~lo ~hi (fun i ->
          let k = i - lo in
          hits.(k) <- hits.(k) + 1);
      Array.for_all (( = ) 1) (Array.sub hits 0 len))

(* ------------------------------------------------------------------ *)
(* Data-parallel kernels are bit-identical to their sequential runs    *)
(* ------------------------------------------------------------------ *)

module Image = Tpdf_image.Image
module Edge = Tpdf_image.Edge
module Motion = Tpdf_image.Motion
module Kernels = Tpdf_image.Kernels
module Ofdm = Tpdf_dsp.Ofdm
module Modulation = Tpdf_dsp.Modulation
module Prng = Tpdf_util.Prng

let random_image rng ~width ~height =
  Image.init ~width ~height (fun _ _ -> Prng.float rng 255.0)

let test_kernels_bit_identical () =
  let rng = Prng.create 7 in
  let img = random_image rng ~width:97 ~height:64 in
  with_pool ~domains:3 @@ fun pool ->
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Edge.name d ^ " pooled = sequential")
        true
        (Image.equal (Edge.run d img) (Edge.run ~pool d img)))
    Edge.all;
  Alcotest.(check bool) "convolve5 pooled = sequential" true
    (Image.equal
       (Kernels.convolve img ~size:5 Kernels.gaussian5)
       (Kernels.convolve ~pool img ~size:5 Kernels.gaussian5));
  (* tiny image: every pixel is border, interior split degenerates *)
  let tiny = random_image rng ~width:3 ~height:2 in
  Alcotest.(check bool) "tiny convolve5 pooled = sequential" true
    (Image.equal
       (Kernels.convolve tiny ~size:5 Kernels.gaussian5)
       (Kernels.convolve ~pool tiny ~size:5 Kernels.gaussian5))

let test_motion_bit_identical () =
  let rng = Prng.create 8 in
  let reference = random_image rng ~width:64 ~height:48 in
  let current = random_image rng ~width:64 ~height:48 in
  with_pool ~domains:3 @@ fun pool ->
  Alcotest.(check bool) "full_search pooled = sequential" true
    (Motion.full_search ~block:16 ~range:4 ~reference current
    = Motion.full_search ~pool ~block:16 ~range:4 ~reference current);
  Alcotest.(check bool) "tss pooled = sequential" true
    (Motion.three_step_search ~block:16 ~reference current
    = Motion.three_step_search ~pool ~block:16 ~reference current)

let test_ofdm_bit_identical () =
  let rng = Prng.create 9 in
  let cfg = Ofdm.config ~n:64 ~l:8 in
  let bits = Array.init 1000 (fun _ -> Prng.int rng 2) in
  with_pool ~domains:3 @@ fun pool ->
  let stream_seq, padded_seq = Ofdm.transmit_bits cfg Modulation.Qam16 bits in
  let stream_par, padded_par =
    Ofdm.transmit_bits ~pool cfg Modulation.Qam16 bits
  in
  Alcotest.(check bool) "transmit pooled = sequential" true
    (padded_par = padded_seq && stream_par = stream_seq);
  let rx_seq = Ofdm.receive_bits cfg Modulation.Qam16 stream_seq in
  let rx_par = Ofdm.receive_bits ~pool cfg Modulation.Qam16 stream_seq in
  Alcotest.(check bool) "receive pooled = sequential" true (rx_par = rx_seq);
  Alcotest.(check bool) "roundtrip" true (rx_seq = padded_seq)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "create rejects domains<1" `Quick
            test_create_invalid;
          Alcotest.test_case "domains accessor" `Quick test_domains_accessor;
          Alcotest.test_case "run keeps index order" `Quick
            test_run_index_order;
          Alcotest.test_case "run on empty batch" `Quick test_run_empty;
          Alcotest.test_case "lowest-indexed exception, all attempted" `Quick
            test_run_exception_lowest_wins;
          Alcotest.test_case "not reentrant" `Quick test_run_not_reentrant;
          Alcotest.test_case "shutdown joins and degrades to inline" `Quick
            test_shutdown_degrades_to_inline;
          Alcotest.test_case "shutdown is idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "parallel_for on empty ranges" `Quick
            test_parallel_for_empty_ranges;
          Alcotest.test_case "parallel_for covers the range" `Quick
            test_parallel_for_covers_range;
        ] );
      ( "reduce",
        [
          QCheck_alcotest.to_alcotest prop_reduce_matches_fold;
          QCheck_alcotest.to_alcotest prop_reduce_preserves_order;
          QCheck_alcotest.to_alcotest prop_parallel_for_sums;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "edge detectors bit-identical" `Quick
            test_kernels_bit_identical;
          Alcotest.test_case "motion search bit-identical" `Quick
            test_motion_bit_identical;
          Alcotest.test_case "ofdm symbols bit-identical" `Quick
            test_ofdm_bit_identical;
        ] );
    ]
