open Tpdf_param
open Tpdf_util

let poly = Alcotest.testable Poly.pp Poly.equal
let frac = Alcotest.testable Frac.pp Frac.equal
let mono = Alcotest.testable Monomial.pp Monomial.equal
let q = Alcotest.testable Q.pp Q.equal

let p s = Expr.parse_poly s
let f s = Expr.parse s

(* ------------------------------------------------------------------ *)
(* Monomial                                                            *)
(* ------------------------------------------------------------------ *)

let test_mono_basics () =
  Alcotest.check mono "x*y commut"
    (Monomial.mul (Monomial.var "x") (Monomial.var "y"))
    (Monomial.mul (Monomial.var "y") (Monomial.var "x"));
  Alcotest.(check int) "degree" 3
    (Monomial.degree (Monomial.of_list [ ("x", 2); ("y", 1) ]));
  Alcotest.(check int) "exponent" 2
    (Monomial.exponent (Monomial.of_list [ ("x", 2) ]) "x");
  Alcotest.(check int) "absent exponent" 0
    (Monomial.exponent (Monomial.of_list [ ("x", 2) ]) "y");
  Alcotest.(check bool) "one is one" true (Monomial.is_one Monomial.one)

let test_mono_divides () =
  let xy2 = Monomial.of_list [ ("x", 1); ("y", 2) ] in
  let y = Monomial.var "y" in
  Alcotest.(check bool) "y | xy2" true (Monomial.divides y xy2);
  Alcotest.(check bool) "xy2 | y" false (Monomial.divides xy2 y);
  Alcotest.check mono "xy2 / y"
    (Monomial.of_list [ ("x", 1); ("y", 1) ])
    (Monomial.div xy2 y);
  Alcotest.check_raises "bad div" (Invalid_argument "Monomial.div: not divisible")
    (fun () -> ignore (Monomial.div y xy2))

let test_mono_gcd_lcm () =
  let a = Monomial.of_list [ ("x", 2); ("y", 1) ] in
  let b = Monomial.of_list [ ("x", 1); ("z", 3) ] in
  Alcotest.check mono "gcd" (Monomial.var "x") (Monomial.gcd a b);
  Alcotest.check mono "lcm"
    (Monomial.of_list [ ("x", 2); ("y", 1); ("z", 3) ])
    (Monomial.lcm a b)

let test_mono_order () =
  (* graded: higher total degree is greater *)
  Alcotest.(check bool) "x^2 > y" true
    (Monomial.compare (Monomial.pow (Monomial.var "x") 2) (Monomial.var "y") > 0);
  Alcotest.(check bool) "one smallest" true
    (Monomial.compare Monomial.one (Monomial.var "a") < 0);
  (* same degree: lexicographic with earlier variables larger *)
  Alcotest.(check bool) "x > y at same degree" true
    (Monomial.compare (Monomial.var "x") (Monomial.var "y") > 0)

let test_mono_eval () =
  let env = function "x" -> 3 | "y" -> 2 | _ -> assert false in
  Alcotest.(check int) "x^2*y = 18" 18
    (Monomial.eval env (Monomial.of_list [ ("x", 2); ("y", 1) ]))

let test_mono_of_list_validation () =
  Alcotest.check_raises "dup" (Invalid_argument "Monomial.of_list: duplicate parameter")
    (fun () -> ignore (Monomial.of_list [ ("x", 1); ("x", 2) ]));
  Alcotest.check_raises "nonpos"
    (Invalid_argument "Monomial.of_list: non-positive exponent") (fun () ->
      ignore (Monomial.of_list [ ("x", 0) ]))

(* ------------------------------------------------------------------ *)
(* Poly                                                                *)
(* ------------------------------------------------------------------ *)

let test_poly_arith () =
  Alcotest.check poly "(x+1)(x-1) = x^2-1" (p "x^2 - 1")
    (Poly.mul (p "x+1") (p "x-1"));
  Alcotest.check poly "x + x = 2x" (p "2*x") (Poly.add (p "x") (p "x"));
  Alcotest.check poly "x - x = 0" Poly.zero (Poly.sub (p "x") (p "x"));
  Alcotest.check poly "pow" (p "x^3 + 3*x^2 + 3*x + 1") (Poly.pow (p "x+1") 3)

let test_poly_divide () =
  (match Poly.divide (p "x^2-1") (p "x-1") with
  | Some quo -> Alcotest.check poly "quotient" (p "x+1") quo
  | None -> Alcotest.fail "should divide");
  (match Poly.divide (p "x^2+1") (p "x-1") with
  | Some _ -> Alcotest.fail "should not divide"
  | None -> ());
  (match Poly.divide (p "6*x*y") (p "2*y") with
  | Some quo -> Alcotest.check poly "monomial quotient" (p "3*x") quo
  | None -> Alcotest.fail "monomials should divide");
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Poly.divide (p "x") Poly.zero))

let test_poly_divide_multivar () =
  match Poly.divide (p "b*N + b*L") (p "N + L") with
  | Some quo -> Alcotest.check poly "b(N+L)/(N+L) = b" (p "b") quo
  | None -> Alcotest.fail "should divide"

let test_poly_content () =
  Alcotest.check q "content 6x+4y" (Q.of_int 2) (Poly.content (p "6*x + 4*y"));
  Alcotest.check mono "monomial gcd"
    (Monomial.var "x")
    (Poly.monomial_gcd (p "x^2*y + 3*x"));
  Alcotest.(check bool) "is_monomial single" true (Poly.is_monomial (p "3*x^2"));
  Alcotest.(check bool) "is_monomial sum" false (Poly.is_monomial (p "x+1"))

let test_poly_eval () =
  let env = function "x" -> 2 | "y" -> 5 | _ -> assert false in
  Alcotest.(check int) "eval" 29 (Poly.eval_int env (p "x^2*y + 3*x + 3"));
  Alcotest.check q "frac eval" (Q.make 1 2)
    (Poly.eval env (Poly.scale (Q.make 1 4) (p "x")))

let test_poly_misc () =
  Alcotest.(check int) "degree" 3 (Poly.degree (p "x^2*y + x"));
  Alcotest.(check int) "degree zero poly" (-1) (Poly.degree Poly.zero);
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Poly.vars (p "x^2*y + x"));
  Alcotest.(check (option (Alcotest.testable Q.pp Q.equal)))
    "to_const" (Some (Q.of_int 5)) (Poly.to_const (p "5"));
  Alcotest.(check (option (Alcotest.testable Q.pp Q.equal)))
    "to_const non-const" None (Poly.to_const (p "x"))

(* ------------------------------------------------------------------ *)
(* Frac                                                                *)
(* ------------------------------------------------------------------ *)

let test_frac_cancellation () =
  Alcotest.check frac "p/p = 1" Frac.one (Frac.div (f "p") (f "p"));
  Alcotest.check frac "b(N+L)/(N+L) = b" (f "b") (Frac.div (f "b*N+b*L") (f "N+L"));
  Alcotest.check frac "(x^2-1)/(x-1) = x+1" (f "x+1")
    (Frac.make (p "x^2-1") (p "x-1"));
  Alcotest.check frac "2p/4 = p/2" (Frac.div (f "p") (f "2"))
    (Frac.div (f "2*p") (f "4"))

let test_frac_arith () =
  Alcotest.check frac "1/p + 1/p = 2/p"
    (Frac.div (f "2") (f "p"))
    (Frac.add (Frac.inv (f "p")) (Frac.inv (f "p")));
  Alcotest.check frac "p/2 * 2 = p" (f "p")
    (Frac.mul (Frac.div (f "p") (f "2")) (f "2"));
  Alcotest.check_raises "zero den" Division_by_zero (fun () ->
      ignore (Frac.make Poly.one Poly.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Frac.inv Frac.zero))

let test_frac_equal_cross () =
  (* equality must hold even without full normalization *)
  let a = Frac.make (p "x^2 + 2*x + 1") (p "x + 1") in
  Alcotest.(check bool) "(x+1)^2/(x+1) = x+1" true (Frac.equal a (f "x+1"))

let test_frac_eval () =
  let v = Valuation.of_list [ ("p", 6) ] in
  Alcotest.check q "p/2 at 6" (Q.of_int 3)
    (Frac.eval (Valuation.env v) (Frac.div (f "p") (f "2")))

(* ------------------------------------------------------------------ *)
(* Multivariate GCD                                                    *)
(* ------------------------------------------------------------------ *)

let test_poly_gcd_basics () =
  Alcotest.check poly "gcd(x^2-1, x^2+2x+1) = x+1" (p "x+1")
    (Poly.gcd (p "x^2-1") (p "x^2+2*x+1"));
  Alcotest.check poly "coprime" (p "1") (Poly.gcd (p "x+1") (p "x+2"));
  Alcotest.check poly "gcd with zero is primitive part" (p "3*x+2")
    (Poly.gcd Poly.zero (p "6*x+4"));
  Alcotest.check poly "constants are units" (p "1")
    (Poly.gcd (p "4") (p "6"));
  Alcotest.check poly "sign normalized" (p "x-1")
    (Poly.gcd (p "1-x") (p "x^2-1"))

let test_poly_gcd_multivariate () =
  (* gcd(b(N+L), bN) = b (the OFDM rate pattern) *)
  Alcotest.check poly "common variable factor" (p "b")
    (Poly.gcd (p "b*N + b*L") (p "b*N"));
  Alcotest.check poly "common polynomial factor" (p "N+L")
    (Poly.gcd (p "x*N + x*L") (p "y*N + y*L"));
  Alcotest.check poly "mixed" (p "x*y")
    (Poly.gcd (p "x^2*y") (p "x*y^2"))

let test_symbolic_gcd_keeps_content () =
  (* the analyses' gcd is over Z[params]: gcd(2p, 4p) = 2p *)
  let g = Tpdf_core.Symbolic.poly_gcd [ p "2*x"; p "4*x" ] in
  Alcotest.check poly "2x" (p "2*x") g;
  Alcotest.check poly "fig2-style" (p "x")
    (Tpdf_core.Symbolic.poly_gcd [ p "2*x"; p "x"; p "2*x"; p "x" ])

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)
(* ------------------------------------------------------------------ *)

let test_poly_subst () =
  Alcotest.check poly "x := y+1 in x^2" (p "y^2 + 2*y + 1")
    (Poly.subst "x" (p "y+1") (p "x^2"));
  Alcotest.check poly "x := 3 in 2xy" (p "6*y") (Poly.subst "x" (p "3") (p "2*x*y"));
  Alcotest.check poly "absent parameter" (p "z+1") (Poly.subst "x" (p "5") (p "z+1"));
  Alcotest.check poly "cross terms collected" (p "2*y")
    (Poly.subst "x" (p "y") (p "x + y"))

let test_frac_subst () =
  (* (x^2-1)/(x+1) normalizes to x-1; substituting x := y+1 gives y *)
  let g = Frac.make (p "x^2-1") (p "x+1") in
  Alcotest.check frac "substitute into quotient" (f "y")
    (Frac.subst "x" (p "y+1") g);
  (* substitution happens in the denominator too *)
  Alcotest.check frac "denominator substitution" (Frac.div (f "1") (f "z+1"))
    (Frac.subst "x" (p "z") (Frac.make (p "1") (p "x+1")));
  Alcotest.check_raises "denominator collapse" Division_by_zero (fun () ->
      ignore (Frac.subst "x" Poly.zero (Frac.make (p "1") (p "x"))))

(* ------------------------------------------------------------------ *)
(* Valuation                                                           *)
(* ------------------------------------------------------------------ *)

let test_valuation () =
  let v = Valuation.of_list [ ("a", 1); ("b", 2) ] in
  Alcotest.(check int) "find" 2 (Valuation.find v "b");
  Alcotest.(check (option int)) "find_opt none" None (Valuation.find_opt v "c");
  Alcotest.(check bool) "mem" true (Valuation.mem v "a");
  Alcotest.check_raises "dup" (Invalid_argument "Valuation.of_list: duplicate parameter a")
    (fun () -> ignore (Valuation.of_list [ ("a", 1); ("a", 2) ]));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Valuation.of_list: parameter z must be positive") (fun () ->
      ignore (Valuation.of_list [ ("z", 0) ]))

(* ------------------------------------------------------------------ *)
(* Expr parser                                                         *)
(* ------------------------------------------------------------------ *)

let test_parser_precedence () =
  Alcotest.check poly "mul binds tighter" (p "(x*y)+z") (p "x*y + z");
  Alcotest.check poly "pow binds tighter" (Poly.add (Poly.pow (p "x") 2) Poly.zero)
    (p "x^2");
  Alcotest.check poly "unary minus" (Poly.neg (p "x")) (p "-x");
  Alcotest.check poly "parens" (Poly.mul (p "x+1") (p "2")) (p "2*(x+1)")

let test_parser_division () =
  Alcotest.check frac "p/2" (Frac.div (f "p") (f "2")) (f "p/2");
  Alcotest.check poly "exact poly division" (p "x+1") (p "(x^2-1)/(x-1)")

let test_parser_errors () =
  let expect_fail s =
    match Expr.parse s with
    | exception Expr.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
  in
  expect_fail "";
  expect_fail "1 +";
  expect_fail "(x";
  expect_fail "x ^ y";
  expect_fail "x $ y";
  expect_fail "1 2";
  (match Expr.parse_poly "1/x" with
  | exception Expr.Parse_error _ -> ()
  | _ -> Alcotest.fail "1/x is not a polynomial")

let test_parser_whitespace () =
  Alcotest.check poly "spaces ignored" (p "2*x+1") (p "  2 * x  +  1 ")

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_poly =
  (* random small polynomials over x, y *)
  let open QCheck.Gen in
  let term =
    map3
      (fun c ex ey ->
        Poly.monomial (Q.of_int c)
          (Monomial.mul
             (Monomial.pow (Monomial.var "x") ex)
             (Monomial.pow (Monomial.var "y") ey)))
      (int_range (-5) 5) (int_range 0 3) (int_range 0 3)
  in
  map (List.fold_left Poly.add Poly.zero) (list_size (int_range 0 5) term)

let arb_poly = QCheck.make ~print:Poly.to_string gen_poly

let prop_poly_mul_comm =
  QCheck.Test.make ~name:"poly multiplication commutative" ~count:300
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      Poly.equal (Poly.mul a b) (Poly.mul b a))

let prop_poly_distrib =
  QCheck.Test.make ~name:"poly distributivity" ~count:300
    (QCheck.triple arb_poly arb_poly arb_poly) (fun (a, b, c) ->
      Poly.equal (Poly.mul a (Poly.add b c))
        (Poly.add (Poly.mul a b) (Poly.mul a c)))

let prop_poly_divide_exact =
  QCheck.Test.make ~name:"divide (a*b) b = a" ~count:300
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      QCheck.assume (not (Poly.is_zero b));
      match Poly.divide (Poly.mul a b) b with
      | Some quo -> Poly.equal quo a
      | None -> false)

let prop_frac_roundtrip =
  QCheck.Test.make ~name:"(a/b)*b = a" ~count:300
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      QCheck.assume (not (Poly.is_zero b));
      let x = Frac.make a b in
      Frac.equal (Frac.mul x (Frac.of_poly b)) (Frac.of_poly a))

let prop_eval_homomorphism =
  QCheck.Test.make ~name:"eval is a ring homomorphism" ~count:300
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      let env = function "x" -> 3 | "y" -> 2 | _ -> 1 in
      Q.equal (Poly.eval env (Poly.mul a b))
        (Q.mul (Poly.eval env a) (Poly.eval env b))
      && Q.equal (Poly.eval env (Poly.add a b))
           (Q.add (Poly.eval env a) (Poly.eval env b)))


let prop_subst_eval_commute =
  QCheck.Test.make ~name:"subst then eval = eval with substituted env" ~count:300
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      let env = function "x" -> 2 | "y" -> 5 | _ -> 1 in
      let direct = Poly.eval env (Poly.subst "x" b a) in
      let env' v = if v = "x" then Q.to_int (Poly.eval env b) else env v in
      QCheck.assume (Q.is_integer (Poly.eval env b));
      Q.equal direct (Poly.eval env' a))

let prop_pp_parse_roundtrip =
  QCheck.Test.make ~name:"Poly.pp output re-parses to the same polynomial"
    ~count:300 arb_poly (fun a ->
      (* coefficients here are integers, so the printed form is valid
         expression syntax *)
      Poly.equal a (Expr.parse_poly (Poly.to_string a)))

let prop_gcd_divides_both =
  QCheck.Test.make ~name:"gcd divides both arguments" ~count:200
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      let g = Poly.gcd a b in
      if Poly.is_zero g then Poly.is_zero a && Poly.is_zero b
      else
        (Poly.is_zero a || Poly.divide a g <> None)
        && (Poly.is_zero b || Poly.divide b g <> None))

(* Exactness is guaranteed for the polynomial sizes of dataflow rates
   (small degrees and coefficients); the remainder-sequence arithmetic can
   overflow native ints on larger random inputs, where gcd falls back to a
   valid (but not maximal) common divisor — so the maximality property is
   checked on rate-sized polynomials. *)
let arb_tiny_poly =
  let gen =
    let open QCheck.Gen in
    let term =
      map3
        (fun c ex ey ->
          Poly.monomial (Q.of_int c)
            (Monomial.mul
               (Monomial.pow (Monomial.var "x") ex)
               (Monomial.pow (Monomial.var "y") ey)))
        (int_range (-2) 2) (int_range 0 2) (int_range 0 2)
    in
    map (List.fold_left Poly.add Poly.zero) (list_size (int_range 1 3) term)
  in
  QCheck.make ~print:Poly.to_string gen

let prop_gcd_common_factor =
  QCheck.Test.make ~name:"gcd(ac, bc) is divisible by primitive c" ~count:300
    (QCheck.triple arb_tiny_poly arb_tiny_poly arb_tiny_poly) (fun (a, b, c) ->
      QCheck.assume (not (Poly.is_zero a));
      QCheck.assume (not (Poly.is_zero b));
      QCheck.assume (not (Poly.is_zero c));
      let g = Poly.gcd (Poly.mul a c) (Poly.mul b c) in
      Poly.divide g (Poly.gcd Poly.zero c) <> None)

let prop_gcd_commutes =
  QCheck.Test.make ~name:"gcd is commutative" ~count:200
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      Poly.equal (Poly.gcd a b) (Poly.gcd b a))

(* ------------------------------------------------------------------ *)
(* Hash-consed kernel: interning, memoization, overflow fallback       *)
(* ------------------------------------------------------------------ *)

let with_memo flag fn =
  let prev = Memo.enabled () in
  Memo.set_enabled flag;
  Fun.protect ~finally:(fun () -> Memo.set_enabled prev) fn

let test_interning_identity () =
  (* structurally equal values built along different paths are physically
     equal, so [==] is a complete equality test within a domain *)
  let a = p "x^2 + 2*x + 1" in
  let b = Poly.mul (p "x+1") (p "x+1") in
  Alcotest.(check bool) "poly interned" true (a == b);
  Alcotest.(check int) "same hash" (Poly.hash a) (Poly.hash b);
  Alcotest.(check int) "same id" (Poly.id a) (Poly.id b);
  let m1 = Monomial.of_list [ ("y", 2); ("x", 1) ]
  and m2 = Monomial.of_sorted_array [| ("x", 1); ("y", 2) |] in
  Alcotest.(check bool) "monomial interned" true (m1 == m2);
  Alcotest.(check int) "same monomial id" (Monomial.id m1) (Monomial.id m2);
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Monomial.of_sorted_array: not strictly sorted")
    (fun () -> ignore (Monomial.of_sorted_array [| ("y", 1); ("x", 1) |]));
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Monomial.of_sorted_array: not strictly sorted")
    (fun () -> ignore (Monomial.of_sorted_array [| ("x", 1); ("x", 2) |]));
  Alcotest.check_raises "non-positive exponent rejected"
    (Invalid_argument "Monomial.of_sorted_array: non-positive exponent")
    (fun () -> ignore (Monomial.of_sorted_array [| ("x", 0) |]))

let test_gcd_overflow_fallback () =
  (* (x+1)·A and (x+1)·B with huge-coefficient A, B: the primitive
     remainder sequence overflows native ints mid-run and [gcd] falls back
     to the common monomial divisor instead of raising.  The fallback is a
     valid common divisor but deliberately not maximal — it must NOT
     recover the (x+1) factor, otherwise this test is not exercising the
     fallback path at all. *)
  let big = Q.of_int (1 lsl 40) in
  let va = Poly.add (Poly.scale big (p "x^2")) (p "x + 1")
  and vb = Poly.add (Poly.scale big (p "x^2")) (p "x - 1") in
  let a = Poly.mul (p "x+1") va and b = Poly.mul (p "x+1") vb in
  let g = Poly.gcd a b in
  Alcotest.check poly "fallback is constant" Poly.one g;
  Alcotest.(check bool) "fallback is not the exact gcd" false
    (Poly.equal g (p "x+1"));
  (* common monomial factors survive the fallback *)
  let y = p "y" in
  Alcotest.check poly "monomial factor recovered" y
    (Poly.gcd (Poly.mul y a) (Poly.mul y b));
  (* a one-sided zero never hits the remainder sequence: the result is the
     other argument up to sign/content, so it still divides it *)
  Alcotest.(check bool) "gcd a 0 divides a" true
    (Poly.divide a (Poly.gcd a Poly.zero) <> None);
  Alcotest.check poly "gcd 0 0 = 0" Poly.zero (Poly.gcd Poly.zero Poly.zero)

let test_memo_on_off () =
  let a = p "p^2*q + 3*p" and b = p "p*q + q" in
  let run () = (Poly.gcd a b, Poly.subst "p" (p "q+1") a, Frac.make a b) in
  let g1, s1, f1 = with_memo true run in
  let g2, s2, f2 = with_memo false run in
  Alcotest.check poly "gcd agrees" g1 g2;
  Alcotest.check poly "subst agrees" s1 s2;
  Alcotest.check frac "make agrees" f1 f2;
  (* repeating a memoized op registers hits, and the intern/memo gauges
     that feed the solver telemetry are live *)
  ignore (with_memo true run);
  Alcotest.(check bool) "hits counted" true (Memo.hits () > 0);
  Alcotest.(check bool) "misses counted" true (Memo.misses () > 0);
  Alcotest.(check bool) "monomial intern gauge populated" true
    (List.assoc "param.intern.monomials" (Memo.gauges ()) > 0.);
  Alcotest.(check bool) "poly intern gauge populated" true
    (List.assoc "param.intern.polys" (Memo.gauges ()) > 0.)

let test_frac_pp_parens () =
  let fr = Frac.make (p "z") (p "x*y") in
  Alcotest.(check string) "multi-variable denominator is wrapped" "z/(x*y)"
    (Frac.to_string fr);
  Alcotest.check frac "wrapped form re-parses" fr (f (Frac.to_string fr));
  let fr2 = Frac.make (p "z") (p "x^2") in
  Alcotest.(check string) "bare power needs no parentheses" "z/x^2"
    (Frac.to_string fr2);
  Alcotest.check frac "bare form re-parses" fr2 (f (Frac.to_string fr2))

(* ------------------------------------------------------------------ *)
(* Properties: ring axioms, canonical-form identity, legacy differential *)
(* ------------------------------------------------------------------ *)

let prop_poly_add_assoc =
  QCheck.Test.make ~name:"poly addition associative" ~count:300
    (QCheck.triple arb_poly arb_poly arb_poly) (fun (a, b, c) ->
      Poly.equal (Poly.add (Poly.add a b) c) (Poly.add a (Poly.add b c)))

let prop_poly_mul_assoc =
  QCheck.Test.make ~name:"poly multiplication associative" ~count:200
    (QCheck.triple arb_poly arb_poly arb_poly) (fun (a, b, c) ->
      Poly.equal (Poly.mul (Poly.mul a b) c) (Poly.mul a (Poly.mul b c)))

let prop_poly_add_inverse =
  QCheck.Test.make ~name:"a + (-a) = 0" ~count:300 arb_poly (fun a ->
      Poly.is_zero (Poly.add a (Poly.neg a)))

let sign n = Stdlib.compare n 0

let prop_poly_compare_consistent =
  QCheck.Test.make ~name:"Poly.compare/hash consistent with equal" ~count:300
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      (Poly.compare a b = 0) = Poly.equal a b
      && sign (Poly.compare a b) = -sign (Poly.compare b a)
      && ((not (Poly.equal a b)) || Poly.hash a = Poly.hash b))

let prop_frac_compare_consistent =
  QCheck.Test.make ~name:"Frac.compare/hash consistent with equal" ~count:200
    (QCheck.quad arb_poly arb_poly arb_poly arb_poly) (fun (a, b, c, d) ->
      QCheck.assume (not (Poly.is_zero b));
      QCheck.assume (not (Poly.is_zero d));
      let x = Frac.make a b and y = Frac.make c d in
      (Frac.compare x y = 0) = Frac.equal x y
      && sign (Frac.compare x y) = -sign (Frac.compare y x)
      && ((not (Frac.equal x y)) || Frac.hash x = Frac.hash y))

let prop_frac_make_canonical =
  QCheck.Test.make
    ~name:"Frac.make is idempotent up to physical identity" ~count:300
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      QCheck.assume (not (Poly.is_zero b));
      let fr = Frac.make a b in
      Frac.make (Frac.num fr) (Frac.den fr) == fr)

let prop_frac_pp_parse_roundtrip =
  QCheck.Test.make ~name:"Frac.pp output re-parses to an equal fraction"
    ~count:300 (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      QCheck.assume (not (Poly.is_zero b));
      let fr = Frac.make a b in
      Frac.equal fr (Expr.parse (Frac.to_string fr)))

(* Differential check against the frozen pre-rewrite kernel: the
   hash-consed implementation must print byte-identical results for every
   ring and gcd operation. *)
let legacy_of_poly pl =
  List.fold_left
    (fun acc (m, c) ->
      Legacy.Poly.add acc
        (Legacy.Poly.monomial c (Legacy.Monomial.of_list (Monomial.to_list m))))
    Legacy.Poly.zero (Poly.terms pl)

let prop_differential_legacy_poly =
  QCheck.Test.make ~name:"poly ops match the frozen legacy kernel" ~count:300
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      let la = legacy_of_poly a and lb = legacy_of_poly b in
      let same op lop =
        String.equal (Poly.to_string (op a b)) (Legacy.Poly.to_string (lop la lb))
      in
      same Poly.add Legacy.Poly.add
      && same Poly.sub Legacy.Poly.sub
      && same Poly.mul Legacy.Poly.mul
      && same Poly.gcd Legacy.Poly.gcd
      && (Poly.is_zero b
         ||
         match (Poly.divide a b, Legacy.Poly.divide la lb) with
         | None, None -> true
         | Some q1, Some q2 ->
             String.equal (Poly.to_string q1) (Legacy.Poly.to_string q2)
         | _ -> false))

let prop_differential_legacy_frac =
  QCheck.Test.make ~name:"Frac.make matches the legacy value" ~count:300
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      QCheck.assume (not (Poly.is_zero b));
      let fr = Frac.make a b in
      (* the rewrite cancels more aggressively (full polynomial gcd), so
         compare values by legacy cross-multiplication, not printed form *)
      Legacy.Frac.equal
        (Legacy.Frac.make (legacy_of_poly a) (legacy_of_poly b))
        (Legacy.Frac.make
           (legacy_of_poly (Frac.num fr))
           (legacy_of_poly (Frac.den fr))))

let () =
  Alcotest.run "param"
    [
      ( "monomial",
        [
          Alcotest.test_case "basics" `Quick test_mono_basics;
          Alcotest.test_case "divides" `Quick test_mono_divides;
          Alcotest.test_case "gcd/lcm" `Quick test_mono_gcd_lcm;
          Alcotest.test_case "graded order" `Quick test_mono_order;
          Alcotest.test_case "eval" `Quick test_mono_eval;
          Alcotest.test_case "of_list validation" `Quick test_mono_of_list_validation;
        ] );
      ( "poly",
        [
          Alcotest.test_case "arithmetic" `Quick test_poly_arith;
          Alcotest.test_case "divide" `Quick test_poly_divide;
          Alcotest.test_case "divide multivariate" `Quick test_poly_divide_multivar;
          Alcotest.test_case "content" `Quick test_poly_content;
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "misc" `Quick test_poly_misc;
        ] );
      ( "frac",
        [
          Alcotest.test_case "cancellation" `Quick test_frac_cancellation;
          Alcotest.test_case "arithmetic" `Quick test_frac_arith;
          Alcotest.test_case "cross equality" `Quick test_frac_equal_cross;
          Alcotest.test_case "eval" `Quick test_frac_eval;
        ] );
      ( "gcd",
        [
          Alcotest.test_case "basics" `Quick test_poly_gcd_basics;
          Alcotest.test_case "multivariate" `Quick test_poly_gcd_multivariate;
          Alcotest.test_case "symbolic content" `Quick test_symbolic_gcd_keeps_content;
        ] );
      ( "subst",
        [
          Alcotest.test_case "poly" `Quick test_poly_subst;
          Alcotest.test_case "frac" `Quick test_frac_subst;
        ] );
      ("valuation", [ Alcotest.test_case "basics" `Quick test_valuation ]);
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "division" `Quick test_parser_division;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "whitespace" `Quick test_parser_whitespace;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "interning identity" `Quick test_interning_identity;
          Alcotest.test_case "gcd overflow fallback" `Quick
            test_gcd_overflow_fallback;
          Alcotest.test_case "memo on/off" `Quick test_memo_on_off;
          Alcotest.test_case "frac pp parentheses" `Quick test_frac_pp_parens;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_poly_mul_comm;
            prop_poly_distrib;
            prop_poly_divide_exact;
            prop_frac_roundtrip;
            prop_eval_homomorphism;
            prop_subst_eval_commute;
            prop_pp_parse_roundtrip;
            prop_gcd_divides_both;
            prop_gcd_common_factor;
            prop_gcd_commutes;
            prop_poly_add_assoc;
            prop_poly_mul_assoc;
            prop_poly_add_inverse;
            prop_poly_compare_consistent;
            prop_frac_compare_consistent;
            prop_frac_make_canonical;
            prop_frac_pp_parse_roundtrip;
            prop_differential_legacy_poly;
            prop_differential_legacy_frac;
          ] );
    ]
