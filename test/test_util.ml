open Tpdf_util

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Intmath                                                             *)
(* ------------------------------------------------------------------ *)

let test_gcd () =
  check_int "gcd 12 18" 6 (Intmath.gcd 12 18);
  check_int "gcd 0 5" 5 (Intmath.gcd 0 5);
  check_int "gcd 5 0" 5 (Intmath.gcd 5 0);
  check_int "gcd 0 0" 0 (Intmath.gcd 0 0);
  check_int "gcd negative" 6 (Intmath.gcd (-12) 18);
  check_int "gcd both negative" 6 (Intmath.gcd (-12) (-18))

let test_lcm () =
  check_int "lcm 4 6" 12 (Intmath.lcm 4 6);
  check_int "lcm 0 5" 0 (Intmath.lcm 0 5);
  check_int "lcm 7 13" 91 (Intmath.lcm 7 13);
  check_int "lcm negative" 12 (Intmath.lcm (-4) 6)

let test_gcd_lcm_lists () =
  check_int "gcd_list" 4 (Intmath.gcd_list [ 8; 12; 20 ]);
  check_int "gcd_list empty" 0 (Intmath.gcd_list []);
  check_int "lcm_list" 24 (Intmath.lcm_list [ 8; 12; 6 ]);
  check_int "lcm_list empty" 1 (Intmath.lcm_list [])

let test_pow () =
  check_int "2^10" 1024 (Intmath.pow 2 10);
  check_int "x^0" 1 (Intmath.pow 7 0);
  check_int "x^1" 7 (Intmath.pow 7 1);
  check_int "0^0" 1 (Intmath.pow 0 0);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Intmath.pow: negative exponent") (fun () ->
      ignore (Intmath.pow 2 (-1)))

let test_overflow () =
  let big = max_int / 2 in
  Alcotest.check_raises "mul overflow" Intmath.Overflow (fun () ->
      ignore (Intmath.mul_exn big 3));
  Alcotest.check_raises "add overflow" Intmath.Overflow (fun () ->
      ignore (Intmath.add_exn max_int 1));
  check_int "mul ok" (big * 2) (Intmath.mul_exn big 2)

let test_ceil_div () =
  check_int "7/2 up" 4 (Intmath.ceil_div 7 2);
  check_int "6/2 up" 3 (Intmath.ceil_div 6 2);
  check_int "0/5 up" 0 (Intmath.ceil_div 0 5);
  check_int "-7/2 up" (-3) (Intmath.ceil_div (-7) 2)

let test_divides () =
  Alcotest.(check bool) "3 | 12" true (Intmath.divides 3 12);
  Alcotest.(check bool) "5 | 12" false (Intmath.divides 5 12);
  Alcotest.(check bool) "0 | 12" false (Intmath.divides 0 12)

(* ------------------------------------------------------------------ *)
(* Q                                                                   *)
(* ------------------------------------------------------------------ *)

let q = Alcotest.testable Q.pp Q.equal

let test_q_normalization () =
  Alcotest.check q "6/4 = 3/2" (Q.make 3 2) (Q.make 6 4);
  Alcotest.check q "neg den" (Q.make (-1) 2) (Q.make 1 (-2));
  Alcotest.check q "zero" Q.zero (Q.make 0 17);
  Alcotest.check_raises "zero den" Division_by_zero (fun () ->
      ignore (Q.make 1 0))

let test_q_arith () =
  Alcotest.check q "1/2 + 1/3" (Q.make 5 6) (Q.add (Q.make 1 2) (Q.make 1 3));
  Alcotest.check q "1/2 * 2/3" (Q.make 1 3) (Q.mul (Q.make 1 2) (Q.make 2 3));
  Alcotest.check q "1/2 - 1/2" Q.zero (Q.sub (Q.make 1 2) (Q.make 1 2));
  Alcotest.check q "div" (Q.make 3 4) (Q.div (Q.make 1 2) (Q.make 2 3));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero))

let test_q_predicates () =
  Alcotest.(check bool) "is_integer 4/2" true (Q.is_integer (Q.make 4 2));
  Alcotest.(check bool) "is_integer 1/2" false (Q.is_integer (Q.make 1 2));
  check_int "to_int" 2 (Q.to_int (Q.make 4 2));
  check_int "sign neg" (-1) (Q.sign (Q.make (-1) 3));
  Alcotest.(check bool) "compare" true (Q.compare (Q.make 1 3) (Q.make 1 2) < 0)

let test_q_gcd () =
  Alcotest.check q "gcd 1/2 1/3" (Q.make 1 6) (Q.gcd (Q.make 1 2) (Q.make 1 3));
  Alcotest.check q "gcd 4 6" (Q.of_int 2) (Q.gcd (Q.of_int 4) (Q.of_int 6));
  Alcotest.check q "gcd with zero" (Q.make 1 2) (Q.gcd Q.zero (Q.make 1 2));
  Alcotest.check q "lcm 1/2 1/3" Q.one (Q.lcm (Q.make 1 2) (Q.make 1 3))

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_bounds () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in t (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int t 0))

let test_prng_float () =
  let t = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.0 in
    Alcotest.(check bool) "float range" true (v >= 0.0 && v < 2.0)
  done

let test_prng_gaussian_moments () =
  let t = Prng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian t in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (abs_float mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (abs_float (var -. 1.0) < 0.1)

let test_prng_split () =
  let t = Prng.create 5 in
  let u = Prng.split t in
  let x = Prng.next_int64 t and y = Prng.next_int64 u in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let test_prng_shuffle () =
  let t = Prng.create 9 in
  let a = Array.init 20 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Hashcons: unique-table interning                                    *)
(* ------------------------------------------------------------------ *)

module HS = Hashcons.Make (struct
  type t = string * int

  let equal (a, i) (b, j) = i = j && String.equal a b
  let hash (s, i) = (Hashtbl.hash s * 31) + i
end)

let test_hashcons_interning () =
  let t = HS.create 16 in
  let a = HS.intern t ("x", 1) in
  let b = HS.intern t ("x", 1) in
  (* a freshly allocated but structurally equal key must still hit *)
  let c = HS.intern t (String.init 1 (fun _ -> 'x'), 1) in
  Alcotest.(check bool) "same value interned once" true (a == b);
  Alcotest.(check bool) "structural equality suffices" true (a == c);
  let d = HS.intern t ("y", 1) in
  Alcotest.(check bool) "distinct values get distinct nodes" true (a != d);
  Alcotest.(check bool) "distinct tags" true (a.Hashcons.tag <> d.Hashcons.tag);
  Alcotest.(check int) "hkey is the content hash"
    (((Hashtbl.hash "x" * 31) + 1) land max_int)
    a.Hashcons.hkey;
  Alcotest.(check int) "two live nodes" 2 (HS.count t)

let test_hashcons_stats () =
  let t = HS.create 16 in
  let a0 = HS.intern t ("a", 0) in
  let a1 = HS.intern t ("a", 0) in
  let b0 = HS.intern t ("b", 0) in
  ignore (a1 == a0 && b0 == b0);
  Alcotest.(check int) "misses count fresh interns" 2 (HS.misses t);
  Alcotest.(check int) "hits count repeats" 1 (HS.hits t);
  let before = a0.Hashcons.tag in
  HS.clear t;
  Alcotest.(check int) "clear empties the table" 0 (HS.count t);
  let after = (HS.intern t ("a", 0)).Hashcons.tag in
  Alcotest.(check bool) "tags are never reused" true (after > before)

(* QCheck properties *)

let prop_q_add_assoc =
  QCheck.Test.make ~name:"Q addition associative" ~count:500
    QCheck.(triple (pair small_signed_int small_nat) (pair small_signed_int small_nat)
              (pair small_signed_int small_nat))
    (fun ((a, b), (c, d), (e, f)) ->
      let mk n d = Q.make n (d + 1) in
      let x = mk a b and y = mk c d and z = mk e f in
      Q.equal (Q.add x (Q.add y z)) (Q.add (Q.add x y) z))

let prop_q_mul_distributes =
  QCheck.Test.make ~name:"Q multiplication distributes" ~count:500
    QCheck.(triple (pair small_signed_int small_nat) (pair small_signed_int small_nat)
              (pair small_signed_int small_nat))
    (fun ((a, b), (c, d), (e, f)) ->
      let mk n d = Q.make n (d + 1) in
      let x = mk a b and y = mk c d and z = mk e f in
      Q.equal (Q.mul x (Q.add y z)) (Q.add (Q.mul x y) (Q.mul x z)))

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:500
    QCheck.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      let g = Intmath.gcd a b in
      g > 0 && a mod g = 0 && b mod g = 0)

let prop_lcm_multiple =
  QCheck.Test.make ~name:"lcm is a common multiple" ~count:500
    QCheck.(pair (int_range 1 10000) (int_range 1 10000))
    (fun (a, b) ->
      let m = Intmath.lcm a b in
      m mod a = 0 && m mod b = 0 && m = a * b / Intmath.gcd a b)

(* ------------------------------------------------------------------ *)
(* Atomic_file: error surfacing and torn-tmp recovery                  *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpdf_util_test_%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  cleanup ();
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:cleanup (fun () -> f dir)

let read_file p = In_channel.with_open_text p In_channel.input_all

let test_atomic_write_roundtrip () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "out.txt" in
  Atomic_file.write path "first";
  Alcotest.(check string) "first write" "first" (read_file path);
  (match Atomic_file.write_result path "second" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "atomic overwrite" "second" (read_file path);
  Alcotest.(check bool) "no tmp left behind" false
    (Sys.file_exists (path ^ ".tmp"))

let test_atomic_write_unwritable () =
  (* A missing parent directory fails at open(2) regardless of uid —
     chmod-based unwritability is invisible to root, which CI may be. *)
  let path = "/nonexistent-tpdf-dir/out.txt" in
  (match Atomic_file.write_result path "data" with
  | Ok () -> Alcotest.fail "write into a missing directory must fail"
  | Error e ->
      Alcotest.(check bool) ("error names the syscall: " ^ e) true
        (String.length e > 0));
  (* The raising variant surfaces the same failure as Unix_error. *)
  match Atomic_file.write path "data" with
  | () -> Alcotest.fail "write into a missing directory must raise"
  | exception Unix.Unix_error _ -> ()

let test_atomic_write_rename_error () =
  with_temp_dir @@ fun dir ->
  (* Target is an existing non-empty directory: the temp file is written
     but rename(2) must fail — the error path after data hits disk. *)
  let path = Filename.concat dir "target" in
  Unix.mkdir path 0o755;
  let blocker = Filename.concat path "keep" in
  Atomic_file.write blocker "x";
  (match Atomic_file.write_result path "data" with
  | Ok () -> Alcotest.fail "rename over a non-empty directory must fail"
  | Error _ -> ());
  Sys.remove blocker;
  Sys.rmdir path;
  (* The stale tmp a failed/crashed writer leaves behind is harmless:
     the next write truncates and replaces it. *)
  Alcotest.(check bool) "failed write left its tmp" true
    (Sys.file_exists (path ^ ".tmp"));
  (match Atomic_file.write_result path "fresh" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "recovered write wins" "fresh" (read_file path);
  Alcotest.(check bool) "tmp consumed by the retry" false
    (Sys.file_exists (path ^ ".tmp"))

let test_atomic_write_stale_tmp () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "out.txt" in
  (* Simulate a writer that died between writing and renaming its tmp. *)
  Out_channel.with_open_bin (path ^ ".tmp") (fun oc ->
      Out_channel.output_string oc "torn garbage");
  (match Atomic_file.write_result path "clean" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "stale tmp does not poison the write" "clean"
    (read_file path);
  Alcotest.(check bool) "stale tmp gone" false (Sys.file_exists (path ^ ".tmp"))

let () =
  Alcotest.run "util"
    [
      ( "atomic_file",
        [
          Alcotest.test_case "write + write_result roundtrip" `Quick
            test_atomic_write_roundtrip;
          Alcotest.test_case "unwritable destination surfaces the error"
            `Quick test_atomic_write_unwritable;
          Alcotest.test_case "rename failure surfaces, tmp harmless" `Quick
            test_atomic_write_rename_error;
          Alcotest.test_case "stale tmp from a crashed writer" `Quick
            test_atomic_write_stale_tmp;
        ] );
      ( "intmath",
        [
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "lcm" `Quick test_lcm;
          Alcotest.test_case "gcd/lcm lists" `Quick test_gcd_lcm_lists;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "overflow checks" `Quick test_overflow;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "divides" `Quick test_divides;
        ] );
      ( "q",
        [
          Alcotest.test_case "normalization" `Quick test_q_normalization;
          Alcotest.test_case "arithmetic" `Quick test_q_arith;
          Alcotest.test_case "predicates" `Quick test_q_predicates;
          Alcotest.test_case "gcd/lcm" `Quick test_q_gcd;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "float" `Quick test_prng_float;
          Alcotest.test_case "gaussian moments" `Slow test_prng_gaussian_moments;
          Alcotest.test_case "split" `Quick test_prng_split;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle;
        ] );
      ( "hashcons",
        [
          Alcotest.test_case "interning" `Quick test_hashcons_interning;
          Alcotest.test_case "stats and clear" `Quick test_hashcons_stats;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_q_add_assoc; prop_q_mul_distributes; prop_gcd_divides; prop_lcm_multiple ] );
    ]
