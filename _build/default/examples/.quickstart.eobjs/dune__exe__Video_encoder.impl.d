examples/video_encoder.ml: Array List Printf Sys Tpdf_apps Video_app
