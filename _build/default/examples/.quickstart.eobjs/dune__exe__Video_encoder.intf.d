examples/video_encoder.mli:
