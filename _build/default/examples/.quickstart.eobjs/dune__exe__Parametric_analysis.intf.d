examples/parametric_analysis.mli:
