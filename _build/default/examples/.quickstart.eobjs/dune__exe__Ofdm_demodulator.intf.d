examples/ofdm_demodulator.mli:
