examples/quickstart.ml: Analysis Behavior Engine Format Graph List Liveness Mode Tpdf_core Tpdf_csdf Tpdf_param Tpdf_sim Valuation
