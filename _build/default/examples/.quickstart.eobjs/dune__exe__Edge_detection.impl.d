examples/edge_detection.ml: Array Edge Edge_app List Printf String Sys Tpdf_apps Tpdf_image Tpdf_sim
