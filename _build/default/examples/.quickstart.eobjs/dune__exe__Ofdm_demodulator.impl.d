examples/ofdm_demodulator.ml: Array List Ofdm_app Printf Sys Tpdf_apps Tpdf_csdf
