examples/edge_detection.mli:
