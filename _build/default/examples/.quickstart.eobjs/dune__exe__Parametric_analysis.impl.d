examples/parametric_analysis.ml: Analysis Examples Format Frac List Liveness Poly Printf String Tpdf_core Tpdf_csdf Tpdf_param Valuation
