examples/quickstart.mli:
