(* The cognitive-radio OFDM demodulator of §IV-B (Fig. 7): a complete
   transmit/receive chain through the TPDF graph, plus the buffer-size
   comparison against the CSDF baseline (Fig. 8).

   Run with:  dune exec examples/ofdm_demodulator.exe -- [M] [N] [beta]
   e.g.       dune exec examples/ofdm_demodulator.exe -- 4 512 8 *)

open Tpdf_apps
module Csdf = Tpdf_csdf

let () =
  let m = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2 in
  let n = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 512 in
  let beta = if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 4 in
  let l = 16 in
  Printf.printf "OFDM demodulator: M=%d (%s), N=%d, L=%d, beta=%d\n" m
    (if m = 2 then "QPSK" else "16-QAM")
    n l beta;

  (* End-to-end link, noiseless then noisy. *)
  let run snr =
    let r = Ofdm_app.run_link ~snr_db:snr ~beta ~n ~l ~m ~iterations:2 () in
    Printf.printf "  %-12s %6d bits  BER %.5f  (QPSK fired %d, QAM fired %d)\n"
      (match snr with None -> "noiseless" | Some s -> Printf.sprintf "SNR %.0f dB" s)
      r.Ofdm_app.sent_bits r.Ofdm_app.ber
      (List.assoc "QPSK" r.Ofdm_app.firings)
      (List.assoc "QAM" r.Ofdm_app.firings)
  in
  run None;
  run (Some 25.0);
  run (Some 15.0);

  (* Fig. 8: buffer provisioning, TPDF vs CSDF. *)
  Printf.printf "\nminimum buffer sizes (Fig. 8):\n";
  Printf.printf "  %5s %12s %12s %9s\n" "beta" "TPDF" "CSDF" "saving";
  List.iter
    (fun beta ->
      let t = (Ofdm_app.tpdf_buffers ~beta ~n ~l:1).Csdf.Buffers.total in
      let c = (Ofdm_app.csdf_buffers ~beta ~n ~l:1).Csdf.Buffers.total in
      Printf.printf "  %5d %12d %12d %8.1f%%\n" beta t c
        (100.0 *. float_of_int (c - t) /. float_of_int c))
    [ 10; 50; 100 ];
  Printf.printf
    "  closed forms: TPDF = 3 + beta*(12N+L); CSDF = beta*(17N+L) — as in the paper\n"
