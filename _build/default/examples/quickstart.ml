(* Quickstart: build a small TPDF graph, run every static analysis, then
   execute it with the discrete-event engine.

   Run with:  dune exec examples/quickstart.exe *)

open Tpdf_core
open Tpdf_param
module Csdf = Tpdf_csdf

let () =
  (* 1. Build a TPDF graph: a parametric producer, a worker on each branch,
     and a Transaction kernel steered by a control actor. *)
  let g = Graph.create () in
  Graph.add_kernel g "producer";
  Graph.add_kernel g "left";
  Graph.add_kernel g "right";
  Graph.add_kernel g ~kind:Graph.Transaction "merge";
  Graph.add_control g "ctl";
  let rate s = Csdf.Graph.rates [ s ] in
  let _p_l =
    Graph.add_channel g ~src:"producer" ~dst:"left" ~prod:(rate "n") ~cons:(rate "1") ()
  in
  let _p_r =
    Graph.add_channel g ~src:"producer" ~dst:"right" ~prod:(rate "n") ~cons:(rate "1") ()
  in
  let l_m =
    Graph.add_channel g ~src:"left" ~dst:"merge" ~prod:(rate "1") ~cons:(rate "1")
      ~priority:1 ()
  in
  let r_m =
    Graph.add_channel g ~src:"right" ~dst:"merge" ~prod:(rate "1") ~cons:(rate "1")
      ~priority:2 ()
  in
  let _p_c =
    Graph.add_channel g ~src:"producer" ~dst:"ctl" ~prod:(rate "1")
      ~cons:(rate "1") ()
  in
  let _c_m =
    Graph.add_control_channel g ~src:"ctl" ~dst:"merge" ~prod:(rate "n")
      ~cons:(rate "1") ()
  in
  Graph.set_modes g "merge"
    [
      Mode.make ~inputs:(Mode.Input_subset [ l_m ]) "take_left";
      Mode.make ~inputs:(Mode.Input_subset [ r_m ]) "take_right";
    ];
  Format.printf "--- graph ---@.%a@." Graph.pp g;

  (* 2. Static analyses: consistency, control areas, rate safety,
     boundedness (Theorem 2 of the paper). *)
  let rep = Analysis.repetition g in
  Format.printf "--- analyses ---@.%a@." Csdf.Repetition.pp rep;
  List.iter (fun a -> Format.printf "%a@." Analysis.pp_area a) (Analysis.areas g);
  let b = Analysis.check_boundedness g ~samples:(Liveness.default_samples g) in
  Format.printf "consistent=%b rate_safe=%b live=%b bounded=%b@."
    b.Analysis.consistent b.Analysis.rate_safe b.Analysis.live b.Analysis.bounded;

  (* 3. Execute two iterations with n = 3: the control actor alternates
     between the two branches; rejected tokens are discarded. *)
  let open Tpdf_sim in
  let behaviors =
    [
      ( "ctl",
        Behavior.emit_mode (fun ctx ->
            if ctx.Behavior.index mod 2 = 0 then "take_left" else "take_right") );
      ( "merge",
        Behavior.sink (fun ctx ->
            List.iter
              (fun (ch, toks) ->
                Format.printf "merge fired in mode %s: %d token(s) from e%d@."
                  ctx.Behavior.mode (List.length toks) ch)
              ctx.Behavior.inputs) );
    ]
  in
  let eng =
    Engine.create ~graph:g
      ~valuation:(Valuation.of_list [ ("n", 3) ])
      ~behaviors ~default:0 ()
  in
  let stats = Engine.run ~iterations:2 eng in
  Format.printf "--- execution ---@.";
  List.iter
    (fun (a, n) -> Format.printf "%-9s fired %d times@." a n)
    stats.Engine.firings;
  Format.printf "simulated time: %.1f ms@." stats.Engine.end_ms;
  List.iter
    (fun (ch, n) -> if n > 0 then Format.printf "e%d dropped %d rejected token(s)@." ch n)
    stats.Engine.dropped
