(* The AVC-encoder pattern of §V: a quality-threshold Transaction chooses
   the best motion-estimation result available within the real-time
   budget.

   Run with:  dune exec examples/video_encoder.exe -- [deadline_ms]
   e.g.       dune exec examples/video_encoder.exe -- 20 *)

open Tpdf_apps

let () =
  let deadline_ms =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 40.0
  in
  Printf.printf "Video encoder front end, %.0f ms deadline per frame\n\n" deadline_ms;

  Printf.printf "estimator quality/cost profile (128x128, block 16, range 7):\n";
  List.iter
    (fun (e, residual) ->
      Printf.printf "  %-12s residual %8.2f   model cost %6.1f ms\n"
        (Video_app.estimator_name e) residual
        (Video_app.model_duration_ms e ~size:128 ~block:16 ~range:7))
    (Video_app.residual_by_estimator ());

  let report = Video_app.run ~frames:4 ~deadline_ms () in
  Printf.printf "\nsimulated run (4 frames):\n";
  List.iter
    (fun (f : Video_app.frame_result) ->
      Printf.printf "  t=%7.1f ms  %-12s residual %8.2f\n" f.Video_app.at_ms
        (Video_app.estimator_name f.Video_app.chosen)
        f.Video_app.residual)
    report.Video_app.frames;

  Printf.printf "\ndeadline sweep:\n";
  List.iter
    (fun d ->
      match (Video_app.run ~frames:1 ~deadline_ms:d ()).Video_app.frames with
      | [ f ] ->
          Printf.printf "  %6.0f ms -> %-12s (residual %8.2f)\n" d
            (Video_app.estimator_name f.Video_app.chosen)
            f.Video_app.residual
      | _ -> ())
    [ 8.0; 20.0; 60.0; 150.0 ]
