(* A walkthrough of the static analyses on the paper's running examples:
   the Fig. 2 graph (symbolic repetition vectors, control areas, rate
   safety) and the Fig. 4 cycles (liveness by clustering and late
   schedules).

   Run with:  dune exec examples/parametric_analysis.exe *)

open Tpdf_core
open Tpdf_param
module Csdf = Tpdf_csdf

let header s = Format.printf "@.=== %s ===@." s

let () =
  header "Fig. 2: symbolic balance equations";
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let rep = Analysis.repetition g in
  Format.printf "%a@." Csdf.Repetition.pp rep;
  Format.printf "at p=4: %s@."
    (String.concat ", "
       (List.map
          (fun (a, n) -> Printf.sprintf "%s:%d" a n)
          (Csdf.Repetition.q_int rep (Valuation.of_list [ ("p", 4) ]))));

  header "Fig. 2: control area and local solution (Definitions 3-4)";
  let area = Analysis.control_area g "C" in
  Format.printf "%a@." Analysis.pp_area area;
  let qg = Analysis.local_scaling g rep area.Analysis.members in
  Format.printf "qG = %a; local iteration:" Poly.pp qg;
  List.iter
    (fun (a, f) -> Format.printf " %s^%a" a Frac.pp f)
    (Analysis.local_solution g rep area.Analysis.members);
  Format.printf "@.(the paper's B^2 C D E^2 F^2)@.";

  header "Definition 5: rate safety, and a violating graph";
  Format.printf "fig2 rate safe: %b@." (Analysis.rate_safe g);
  let bad = Examples.unsafe_control () in
  (match Analysis.rate_safety bad with
  | Ok () -> Format.printf "unexpected: unsafe graph accepted@."
  | Error vs ->
      Format.printf "unsafe_control violations:@.";
      List.iter
        (fun (v : Analysis.violation) ->
          Format.printf "  [%s, e%d] %s@." v.Analysis.control v.Analysis.channel
            v.Analysis.reason)
        vs);

  header "Fig. 4: liveness through clustering and late schedules";
  List.iter
    (fun (name, g) ->
      let r = Liveness.check g (Valuation.of_list [ ("p", 2) ]) in
      Format.printf "%s -> %a@." name Liveness.pp_report r)
    [ ("fig4a", Examples.fig4a ()); ("fig4b", Examples.fig4b ()) ];
  let g4 = Examples.fig4a () in
  let rep4 = Analysis.repetition g4 in
  (match Liveness.cluster_cycle g4 rep4 [ "B"; "C" ] with
  | Ok clustered ->
      Format.printf "fig4a clustered into Omega:@.%a@." Csdf.Graph.pp clustered
  | Error e -> Format.printf "clustering failed: %s@." e);

  header "Theorem 2: boundedness verdicts";
  List.iter
    (fun (name, g) ->
      let b = Analysis.check_boundedness g ~samples:(Liveness.default_samples g) in
      Format.printf "%-15s bounded=%b%s@." name b.Analysis.bounded
        (if b.Analysis.notes = [] then ""
         else " (" ^ String.concat "; " b.Analysis.notes ^ ")"))
    [
      ("fig2", (Examples.fig2 ()).Examples.graph);
      ("fig3", Examples.fig3 ());
      ("fig4a", Examples.fig4a ());
      ("unsafe_control", Examples.unsafe_control ());
    ]
