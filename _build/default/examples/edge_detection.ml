(* The edge-detection case study of §IV-A: several detectors race each
   frame, and a clock-driven Transaction box picks the best result
   available at the deadline.

   Run with:  dune exec examples/edge_detection.exe -- [deadline_ms] [size]
   e.g.       dune exec examples/edge_detection.exe -- 75 256 *)

open Tpdf_apps
open Tpdf_image

let () =
  let deadline_ms =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 75.0
  in
  let size = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 256 in
  Printf.printf "Edge detection app: %dx%d frames, %.0f ms deadline\n" size size
    deadline_ms;

  (* What the model predicts for the paper's 1024x1024 setting. *)
  Printf.printf "\ndeadline sweep (1024x1024, paper-calibrated cost model):\n";
  List.iter
    (fun d ->
      Printf.printf "  %6.0f ms -> %s\n" d
        (Edge.name (Edge_app.winner_at_deadline ~deadline_ms:d ~size:1024 ())))
    [ 100.0; 250.0; 500.0; 600.0; 1200.0 ];

  (* A real simulated run: synthetic frames, real detectors, the clock
     control actor firing the Transaction box. *)
  let report = Edge_app.run ~size ~frames:4 ~deadline_ms () in
  Printf.printf "\nsimulated run (4 frames):\n";
  List.iter
    (fun (f : Edge_app.frame_result) ->
      Printf.printf "  deadline at %7.1f ms: %-10s selected (%d edge pixels)\n"
        f.Edge_app.at_ms
        (Edge.name f.Edge_app.winner)
        f.Edge_app.edge_pixels)
    report.Edge_app.frames;
  Printf.printf "\nfirings: %s\n"
    (String.concat ", "
       (List.map
          (fun (a, n) -> Printf.sprintf "%s:%d" a n)
          report.Edge_app.stats.Tpdf_sim.Engine.firings));
  let dropped =
    List.fold_left (fun acc (_, n) -> acc + n)
      0 report.Edge_app.stats.Tpdf_sim.Engine.dropped
  in
  Printf.printf "tokens rejected by the Transaction box: %d\n" dropped
