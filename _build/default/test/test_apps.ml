open Tpdf_apps
open Tpdf_core
open Tpdf_param
open Tpdf_image
module Csdf = Tpdf_csdf

(* ------------------------------------------------------------------ *)
(* Edge-detection application (Fig. 6)                                 *)
(* ------------------------------------------------------------------ *)

let test_edge_graph_static () =
  let g, _ = Edge_app.graph () in
  Alcotest.(check bool) "consistent" true (Analysis.consistent g);
  Alcotest.(check bool) "rate safe" true (Analysis.rate_safe g);
  (match Graph.validate g with
  | Ok () -> ()
  | Error m -> Alcotest.fail (String.concat "; " m));
  let b = Analysis.check_boundedness g ~samples:[ Valuation.empty ] in
  Alcotest.(check bool) "bounded" true b.Analysis.bounded;
  (* clock control actor present with the right period *)
  Alcotest.(check (option (float 0.0))) "clock period" (Some 500.0)
    (Graph.clock_period_ms g "Clock")

let test_edge_run_tight_deadline () =
  (* 128x128 frames, model timing: quick ~3.1ms, sobel ~7.4, prewitt ~8.2,
     canny ~16.3, after an 11 ms read+duplicate overhead.  At a 19 ms
     deadline sobel (18.4) fits but prewitt (19.2) does not. *)
  let r = Edge_app.run ~size:128 ~frames:1 ~deadline_ms:19.0 () in
  match r.Edge_app.frames with
  | [ f ] ->
      Alcotest.(check string) "sobel wins" "sobel" (Edge.name f.Edge_app.winner);
      Alcotest.(check bool) "found edges" true (f.Edge_app.edge_pixels > 0)
  | _ -> Alcotest.fail "expected one frame"

let test_edge_run_pipelined_frames () =
  (* With several frames in flight, later deadline ticks can pick up
     results of slower detectors computed for queued frames — quality per
     tick never decreases. *)
  let r = Edge_app.run ~size:128 ~frames:3 ~deadline_ms:19.0 () in
  Alcotest.(check int) "three selections" 3 (List.length r.Edge_app.frames);
  let qualities =
    List.map (fun f -> Edge.quality f.Edge_app.winner) r.Edge_app.frames
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "quality non-decreasing over ticks" true
    (non_decreasing qualities)

let test_edge_run_loose_deadline () =
  (* A deadline beyond Canny's cost selects the best detector. *)
  let r = Edge_app.run ~size:128 ~frames:1 ~deadline_ms:80.0 () in
  match r.Edge_app.frames with
  | [ f ] -> Alcotest.(check string) "canny wins" "canny" (Edge.name f.Edge_app.winner)
  | _ -> Alcotest.fail "expected one frame"

let test_edge_winner_model_matches_run () =
  List.iter
    (fun deadline ->
      let predicted = Edge_app.winner_at_deadline ~deadline_ms:deadline ~size:128 () in
      let r = Edge_app.run ~size:128 ~frames:1 ~deadline_ms:deadline () in
      match r.Edge_app.frames with
      | [ f ] ->
          Alcotest.(check string)
            (Printf.sprintf "deadline %.0fms" deadline)
            (Edge.name predicted)
            (Edge.name f.Edge_app.winner)
      | _ -> Alcotest.fail "expected one frame")
    [ 16.0; 20.0; 22.0; 40.0 ]

let test_edge_winner_quality_monotone () =
  (* Longer deadlines never pick a worse detector. *)
  let q d = Edge.quality (Edge_app.winner_at_deadline ~deadline_ms:d ~size:1024 ()) in
  let rec check = function
    | a :: (b :: _ as rest) -> q a <= q b && check rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone quality" true
    (check [ 100.0; 250.0; 500.0; 600.0; 1200.0; 2000.0 ])

let test_edge_paper_deadline () =
  (* At the paper's 500 ms / 1024x1024 setting the winner is Sobel
     (473 ms fits, Prewitt's 522 ms does not). *)
  Alcotest.(check string) "500ms -> sobel" "sobel"
    (Edge.name (Edge_app.winner_at_deadline ~deadline_ms:500.0 ~size:1024 ()))

(* ------------------------------------------------------------------ *)
(* OFDM application (Fig. 7 / Fig. 8)                                  *)
(* ------------------------------------------------------------------ *)

let test_ofdm_graph_static () =
  let g, _ = Ofdm_app.tpdf_graph () in
  Alcotest.(check bool) "consistent" true (Analysis.consistent g);
  Alcotest.(check bool) "rate safe" true (Analysis.rate_safe g);
  let rep = Analysis.repetition g in
  (* every actor fires once per iteration *)
  List.iter
    (fun (a, q) ->
      Alcotest.(check bool) (a ^ " fires once") true
        (Tpdf_param.Poly.equal q (Tpdf_param.Poly.one)))
    rep.Csdf.Repetition.q;
  let area = Analysis.control_area g "CON" in
  Alcotest.(check (list string)) "Area(CON)" [ "DUP"; "SRC"; "TRAN" ]
    area.Analysis.members

let test_ofdm_csdf_graph_static () =
  let g, _ = Ofdm_app.csdf_graph () in
  Alcotest.(check bool) "baseline consistent" true (Analysis.consistent g);
  Alcotest.(check int) "no control actors" 0
    (List.length (Graph.control_actors g))

let test_fig8_formulas () =
  (* measured buffer totals must equal the paper's closed forms *)
  List.iter
    (fun (beta, n, l) ->
      let t = Ofdm_app.tpdf_buffers ~beta ~n ~l in
      let c = Ofdm_app.csdf_buffers ~beta ~n ~l in
      Alcotest.(check int)
        (Printf.sprintf "TPDF beta=%d N=%d" beta n)
        (Ofdm_app.tpdf_buffer_formula ~beta ~n ~l)
        t.Csdf.Buffers.total;
      Alcotest.(check int)
        (Printf.sprintf "CSDF beta=%d N=%d" beta n)
        (Ofdm_app.csdf_buffer_formula ~beta ~n ~l)
        c.Csdf.Buffers.total)
    [ (1, 512, 1); (10, 512, 1); (10, 1024, 1); (100, 1024, 1); (7, 64, 3) ]

let test_fig8_improvement () =
  (* the paper reports a 29% improvement over CSDF *)
  let t = (Ofdm_app.tpdf_buffers ~beta:50 ~n:1024 ~l:1).Csdf.Buffers.total in
  let c = (Ofdm_app.csdf_buffers ~beta:50 ~n:1024 ~l:1).Csdf.Buffers.total in
  let improvement = 100.0 *. float_of_int (c - t) /. float_of_int c in
  Alcotest.(check bool)
    (Printf.sprintf "improvement %.1f%% in [28, 31]" improvement)
    true
    (improvement > 28.0 && improvement < 31.0)

let test_fig8_linear_in_beta () =
  let total beta = (Ofdm_app.tpdf_buffers ~beta ~n:512 ~l:1).Csdf.Buffers.total in
  let d1 = total 20 - total 10 and d2 = total 30 - total 20 in
  Alcotest.(check int) "equal increments" d1 d2

let test_ofdm_link_qpsk () =
  let r = Ofdm_app.run_link ~beta:2 ~n:64 ~l:4 ~m:2 ~iterations:2 () in
  Alcotest.(check (float 0.0)) "noiseless BER" 0.0 r.Ofdm_app.ber;
  Alcotest.(check int) "bits" (2 * 2 * 64 * 2) r.Ofdm_app.sent_bits;
  (* QAM never fires in QPSK mode *)
  Alcotest.(check int) "QAM idle" 0 (List.assoc "QAM" r.Ofdm_app.firings);
  Alcotest.(check int) "QPSK fires" 2 (List.assoc "QPSK" r.Ofdm_app.firings)

let test_ofdm_link_qam () =
  let r = Ofdm_app.run_link ~beta:3 ~n:32 ~l:2 ~m:4 ~iterations:1 () in
  Alcotest.(check (float 0.0)) "noiseless BER" 0.0 r.Ofdm_app.ber;
  Alcotest.(check int) "QPSK idle" 0 (List.assoc "QPSK" r.Ofdm_app.firings)

let test_ofdm_link_noisy () =
  let r =
    Ofdm_app.run_link ~snr_db:(Some 25.0) ~beta:2 ~n:64 ~l:4 ~m:2 ~iterations:1 ()
  in
  Alcotest.(check bool) "low BER at 25 dB" true (r.Ofdm_app.ber < 0.01)

let test_ofdm_bad_m () =
  match Ofdm_app.run_link ~beta:1 ~n:32 ~l:1 ~m:3 ~iterations:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "M=3 accepted"

(* ------------------------------------------------------------------ *)
(* Runtime reconfiguration (β varies between activations, §IV-B)        *)
(* ------------------------------------------------------------------ *)

let test_ofdm_reconfiguration_over_beta () =
  (* Run the OFDM graph with the vectorization degree changing every
     iteration; the worst per-channel occupancy across the run must equal
     the Fig. 8 provisioning at the largest beta. *)
  let g, _ = Ofdm_app.tpdf_graph () in
  let betas = [ 2; 5; 3 ] in
  let vals = List.map (fun beta -> Ofdm_app.valuation ~beta ~n:16 ~l:2) betas in
  let report =
    Tpdf_sim.Reconfigure.run_sequence ~graph:g
      ~targets:(fun _ -> [ ("QAM", 0) ])
      ~default:0 vals
  in
  Alcotest.(check int) "three iterations" 3
    (List.length report.Tpdf_sim.Reconfigure.iterations);
  let total =
    List.fold_left (fun acc (_, occ) -> acc + occ) 0
      report.Tpdf_sim.Reconfigure.max_occupancy
  in
  (* worst-case = beta 5, QPSK scenario: full formula minus the QAM
     branch's channels (beta*N dup_qam + 4*beta*N qam_tran = 5*beta*N) *)
  let expected =
    Ofdm_app.tpdf_buffer_formula ~beta:5 ~n:16 ~l:2 - (5 * 5 * 16)
  in
  Alcotest.(check int) "matches Fig. 8 provisioning at max beta" expected total

let test_reconfigure_empty_rejected () =
  let g, _ = Ofdm_app.tpdf_graph () in
  match Tpdf_sim.Reconfigure.run_sequence ~graph:g ~default:0 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty sequence accepted"

(* ------------------------------------------------------------------ *)
(* FM radio (§V)                                                       *)
(* ------------------------------------------------------------------ *)

let test_fm_graph_static () =
  let g = Fm_radio.graph () in
  Alcotest.(check bool) "consistent" true (Analysis.consistent g);
  Alcotest.(check bool) "rate safe" true (Analysis.rate_safe g);
  match Graph.validate g with
  | Ok () -> ()
  | Error m -> Alcotest.fail (String.concat "; " m)

let test_fm_speech_halves_work () =
  let c = Fm_radio.compare_profiles ~bands:8 Fm_radio.Speech in
  Alcotest.(check int) "csdf computes all bands" 8 c.Fm_radio.csdf_band_firings;
  Alcotest.(check int) "tpdf computes half" 4 c.Fm_radio.tpdf_band_firings;
  Alcotest.(check bool) "tpdf not slower" true
    (c.Fm_radio.tpdf_makespan_ms <= c.Fm_radio.csdf_makespan_ms);
  Alcotest.(check bool) "tpdf buffers smaller" true
    (c.Fm_radio.tpdf_buffers < c.Fm_radio.csdf_buffers)

let test_fm_music_matches_csdf_work () =
  let c = Fm_radio.compare_profiles ~bands:8 Fm_radio.Music in
  Alcotest.(check int) "same band work" c.Fm_radio.csdf_band_firings
    c.Fm_radio.tpdf_band_firings

let test_fm_audio_runs () =
  let r = Fm_radio.run_audio Fm_radio.Speech ~iterations:3 in
  Alcotest.(check bool) "produced samples" true (r.Fm_radio.samples > 0);
  Alcotest.(check bool) "non-trivial output power" true
    (r.Fm_radio.output_power > 0.0);
  (* suppressed bands never fired *)
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "band%d idle" i)
        0
        (List.assoc (Printf.sprintf "band%d" i) r.Fm_radio.firings))
    [ 4; 5; 6; 7 ]

let test_fm_profiles () =
  Alcotest.(check (list int)) "speech bands" [ 0; 1; 2; 3 ]
    (Fm_radio.bands_for Fm_radio.Speech ~total:8);
  Alcotest.(check (list int)) "music bands" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (Fm_radio.bands_for Fm_radio.Music ~total:8)

let () =
  Alcotest.run "apps"
    [
      ( "edge",
        [
          Alcotest.test_case "static analyses" `Quick test_edge_graph_static;
          Alcotest.test_case "tight deadline" `Quick test_edge_run_tight_deadline;
          Alcotest.test_case "pipelined frames" `Quick test_edge_run_pipelined_frames;
          Alcotest.test_case "loose deadline" `Quick test_edge_run_loose_deadline;
          Alcotest.test_case "model matches run" `Quick test_edge_winner_model_matches_run;
          Alcotest.test_case "quality monotone" `Quick test_edge_winner_quality_monotone;
          Alcotest.test_case "paper's 500ms" `Quick test_edge_paper_deadline;
        ] );
      ( "ofdm",
        [
          Alcotest.test_case "tpdf static" `Quick test_ofdm_graph_static;
          Alcotest.test_case "csdf static" `Quick test_ofdm_csdf_graph_static;
          Alcotest.test_case "fig8 formulas" `Quick test_fig8_formulas;
          Alcotest.test_case "fig8 improvement" `Quick test_fig8_improvement;
          Alcotest.test_case "fig8 linearity" `Quick test_fig8_linear_in_beta;
          Alcotest.test_case "link qpsk" `Quick test_ofdm_link_qpsk;
          Alcotest.test_case "link qam" `Quick test_ofdm_link_qam;
          Alcotest.test_case "link noisy" `Quick test_ofdm_link_noisy;
          Alcotest.test_case "bad M" `Quick test_ofdm_bad_m;
        ] );
      ( "reconfigure",
        [
          Alcotest.test_case "beta sweep" `Quick test_ofdm_reconfiguration_over_beta;
          Alcotest.test_case "empty rejected" `Quick test_reconfigure_empty_rejected;
        ] );
      ( "fm-radio",
        [
          Alcotest.test_case "static" `Quick test_fm_graph_static;
          Alcotest.test_case "speech halves work" `Quick test_fm_speech_halves_work;
          Alcotest.test_case "music equals csdf" `Quick test_fm_music_matches_csdf_work;
          Alcotest.test_case "audio runs" `Quick test_fm_audio_runs;
          Alcotest.test_case "profiles" `Quick test_fm_profiles;
        ] );
    ]
