open Tpdf_core
open Tpdf_param
module Csdf = Tpdf_csdf

let poly = Alcotest.testable Poly.pp Poly.equal
let p_of s = Expr.parse_poly s

let v1 = Valuation.of_list [ ("p", 1) ]
let v3 = Valuation.of_list [ ("p", 3) ]

(* ------------------------------------------------------------------ *)
(* Fig. 4(a): live cycle, local schedule B^2 C^2                       *)
(* ------------------------------------------------------------------ *)

let test_fig4a_live () =
  let g = Examples.fig4a () in
  let r = Liveness.check g v3 in
  Alcotest.(check bool) "live" true r.live;
  Alcotest.(check int) "one cycle" 1 (List.length r.cycles);
  let c = List.hd r.cycles in
  Alcotest.(check (list string)) "members" [ "B"; "C" ] c.members;
  Alcotest.(check (list (pair string int))) "local counts (qL)"
    [ ("B", 2); ("C", 2) ]
    c.local_counts;
  match c.local_schedule with
  | None -> Alcotest.fail "locally live"
  | Some s ->
      (* paper: (B^2 C^2) *)
      Alcotest.(check (list (pair string int))) "local schedule"
        [ ("B", 2); ("C", 2) ]
        s

(* ------------------------------------------------------------------ *)
(* Fig. 4(b): live only through the late schedule (B C C B)            *)
(* ------------------------------------------------------------------ *)

let test_fig4b_late_schedule () =
  let g = Examples.fig4b () in
  let r = Liveness.check g v3 in
  Alcotest.(check bool) "live" true r.live;
  let c = List.hd r.cycles in
  match c.local_schedule with
  | None -> Alcotest.fail "locally live"
  | Some s ->
      (* paper: the late schedule (B C C B) *)
      Alcotest.(check (list (pair string int))) "late schedule"
        [ ("B", 1); ("C", 2); ("B", 1) ]
        s

let test_fig4_samples () =
  List.iter
    (fun g ->
      List.iter
        (fun v -> Alcotest.(check bool) "live at sample" true (Liveness.is_live g v))
        (Liveness.default_samples g))
    [ Examples.fig4a (); Examples.fig4b () ]

(* ------------------------------------------------------------------ *)
(* Deadlocked cycle                                                    *)
(* ------------------------------------------------------------------ *)

let test_token_starved_cycle () =
  (* Fig 4(b) variant with no initial tokens: structurally identical but
     dead. *)
  let g = Graph.create () in
  Graph.add_kernel g ~phases:2 "A";
  Graph.add_kernel g ~phases:2 "B";
  Graph.add_kernel g "C";
  ignore
    (Graph.add_channel g ~src:"A" ~dst:"B"
       ~prod:(Csdf.Graph.rates [ "p"; "p" ])
       ~cons:(Csdf.Graph.const_rates [ 1; 1 ])
       ());
  ignore
    (Graph.add_channel g ~src:"B" ~dst:"C"
       ~prod:(Csdf.Graph.const_rates [ 2; 0 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ());
  ignore
    (Graph.add_channel g ~src:"C" ~dst:"B"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1; 1 ])
       ());
  let r = Liveness.check g v1 in
  Alcotest.(check bool) "dead" false r.live;
  Alcotest.(check bool) "B stuck" true (List.mem "B" r.stuck);
  let c = List.hd r.cycles in
  Alcotest.(check bool) "cycle locally dead" true (c.local_schedule = None)

(* ------------------------------------------------------------------ *)
(* Clustering (Fig. 4(c))                                              *)
(* ------------------------------------------------------------------ *)

let test_cluster_fig4a () =
  let g = Examples.fig4a () in
  let rep = Analysis.repetition g in
  match Liveness.cluster_cycle g rep [ "B"; "C" ] with
  | Error msg -> Alcotest.fail msg
  | Ok clustered ->
      Alcotest.(check (list string)) "actors" [ "A"; "Omega" ]
        (Csdf.Graph.actors clustered);
      (* Fig 4(c): A ->[p,p] [2]-> Omega *)
      let e = List.hd (Csdf.Graph.channels clustered) in
      Alcotest.(check string) "src" "A" e.src;
      Alcotest.(check string) "dst" "Omega" e.dst;
      Alcotest.check poly "cons [2]" (p_of "2") e.label.cons.(0);
      Alcotest.(check int) "prod phases" 2 (Array.length e.label.prod);
      (* the clustered graph solves to A^2 Omega^p *)
      let rep' = Csdf.Repetition.solve clustered in
      Alcotest.check poly "q(A)" (p_of "2") (Csdf.Repetition.q_of rep' "A");
      Alcotest.check poly "q(Omega)" (p_of "p") (Csdf.Repetition.q_of rep' "Omega")

let test_cluster_keeps_outside_channels () =
  (* add an extra actor downstream of the cycle and check its channel
     survives clustering with adjusted rates *)
  let g = Examples.fig4a () in
  Graph.add_kernel g "Z";
  ignore
    (Graph.add_channel g ~src:"C" ~dst:"Z"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ());
  let rep = Analysis.repetition g in
  match Liveness.cluster_cycle g rep [ "B"; "C" ] with
  | Error msg -> Alcotest.fail msg
  | Ok clustered ->
      Alcotest.(check bool) "Z kept" true (Csdf.Graph.mem_actor clustered "Z");
      let to_z =
        List.find
          (fun (e : (string, Csdf.Graph.channel) Tpdf_graph.Digraph.edge) ->
            e.dst = "Z")
          (Csdf.Graph.channels clustered)
      in
      Alcotest.(check string) "from Omega" "Omega" to_z.src;
      (* C fires twice per local iteration, producing 2 tokens *)
      Alcotest.check poly "adjusted prod" (p_of "2") to_z.label.prod.(0)

let test_cluster_name_collision () =
  let g = Examples.fig4a () in
  Graph.add_kernel g "Omega";
  ignore
    (Graph.add_channel g ~src:"C" ~dst:"Omega"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ());
  let rep = Analysis.repetition g in
  match Liveness.cluster_cycle g rep [ "B"; "C" ] with
  | Error msg -> Alcotest.fail msg
  | Ok clustered ->
      Alcotest.(check bool) "fresh name used" true
        (Csdf.Graph.mem_actor clustered "Omega_1")

(* ------------------------------------------------------------------ *)
(* Fig. 2 liveness                                                     *)
(* ------------------------------------------------------------------ *)

let test_fig2_live () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  List.iter
    (fun v -> Alcotest.(check bool) "fig2 live" true (Liveness.is_live g v))
    (Liveness.default_samples g)

let test_default_samples () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let samples = Liveness.default_samples g in
  Alcotest.(check int) "four samples" 4 (List.length samples);
  List.iter
    (fun v -> Alcotest.(check bool) "binds p" true (Valuation.mem v "p"))
    samples;
  (* concrete graph: single empty sample *)
  let g0 = Graph.create () in
  Graph.add_kernel g0 "K";
  Alcotest.(check int) "no params -> 1 sample" 1
    (List.length (Liveness.default_samples g0))

let () =
  Alcotest.run "liveness"
    [
      ( "fig4",
        [
          Alcotest.test_case "fig4a live (B^2 C^2)" `Quick test_fig4a_live;
          Alcotest.test_case "fig4b late schedule (BCCB)" `Quick test_fig4b_late_schedule;
          Alcotest.test_case "all samples" `Quick test_fig4_samples;
          Alcotest.test_case "starved cycle dead" `Quick test_token_starved_cycle;
        ] );
      ( "clustering",
        [
          Alcotest.test_case "fig4c" `Quick test_cluster_fig4a;
          Alcotest.test_case "outside channels" `Quick test_cluster_keeps_outside_channels;
          Alcotest.test_case "name collision" `Quick test_cluster_name_collision;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "live" `Quick test_fig2_live;
          Alcotest.test_case "default samples" `Quick test_default_samples;
        ] );
    ]
