open Tpdf_core
open Tpdf_param
module Csdf = Tpdf_csdf

let poly = Alcotest.testable Poly.pp Poly.equal
let frac = Alcotest.testable Frac.pp Frac.equal
let p = Expr.parse_poly

(* ------------------------------------------------------------------ *)
(* Graph construction and validation                                   *)
(* ------------------------------------------------------------------ *)

let test_control_channel_validation () =
  let g = Graph.create () in
  Graph.add_kernel g "K";
  Graph.add_kernel g "L";
  Graph.add_control g "C";
  (* control channels must start from a control actor *)
  (match
     Graph.add_control_channel g ~src:"K" ~dst:"L"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kernel as control source accepted");
  (* control consumption rate must be 0/1 *)
  (match
     Graph.add_control_channel g ~src:"C" ~dst:"K"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 2 ])
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "control rate 2 accepted");
  let id =
    Graph.add_control_channel g ~src:"C" ~dst:"K"
      ~prod:(Csdf.Graph.const_rates [ 1 ])
      ~cons:(Csdf.Graph.const_rates [ 1 ])
      ()
  in
  Alcotest.(check (option int)) "control port registered" (Some id)
    (Graph.control_port g "K");
  Alcotest.(check bool) "is control channel" true (Graph.is_control_channel g id);
  (* a kernel has at most one control port *)
  (match
     Graph.add_control_channel g ~src:"C" ~dst:"K"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "second control port accepted")

let test_mode_validation () =
  let g = Graph.create () in
  Graph.add_kernel g "K";
  Graph.add_kernel g "L";
  let e =
    Graph.add_channel g ~src:"K" ~dst:"L"
      ~prod:(Csdf.Graph.const_rates [ 1 ])
      ~cons:(Csdf.Graph.const_rates [ 1 ])
      ()
  in
  (* referencing a non-adjacent channel must fail *)
  (match
     Graph.set_modes g "K" [ Mode.make ~inputs:(Mode.Input_subset [ 99 ]) "m" ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad channel id accepted");
  (* duplicate mode names must fail *)
  (match Graph.set_modes g "K" [ Mode.make "m"; Mode.make "m" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate modes accepted");
  Graph.set_modes g "K" [ Mode.make ~outputs:(Mode.Output_subset [ e ]) "m" ];
  Alcotest.(check int) "modes stored" 1 (List.length (Graph.modes g "K"));
  (* default mode for kernels without a declared set *)
  Alcotest.(check int) "default mode" 1 (List.length (Graph.modes g "L"))

let test_validate () =
  let g = Graph.create () in
  Graph.add_kernel g "K";
  Graph.add_kernel g "L";
  let e =
    Graph.add_channel g ~src:"K" ~dst:"L"
      ~prod:(Csdf.Graph.const_rates [ 1 ])
      ~cons:(Csdf.Graph.const_rates [ 1 ])
      ()
  in
  Graph.set_modes g "L"
    [
      Mode.make ~inputs:(Mode.Input_subset [ e ]) "a";
      Mode.make ~inputs:Mode.All_inputs "b";
    ];
  (match Graph.validate g with
  | Error msgs ->
      Alcotest.(check bool) "flags missing control port" true
        (List.exists (fun m -> String.length m > 0) msgs)
  | Ok () -> Alcotest.fail "multi-mode kernel without control port accepted");
  (* clocks must not have data inputs *)
  let h = Graph.create () in
  Graph.add_kernel h "K";
  Graph.add_control h ~clock_period_ms:500.0 "W";
  ignore
    (Graph.add_channel h ~src:"K" ~dst:"W"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ());
  (match Graph.validate h with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "clock with inputs accepted");
  Alcotest.check_raises "non-positive clock"
    (Invalid_argument "Tpdf.add_control: clock period must be positive")
    (fun () -> Graph.add_control h ~clock_period_ms:0.0 "W2")

let test_kinds () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  Alcotest.(check bool) "C control" true (Graph.is_control g "C");
  Alcotest.(check bool) "F not control" false (Graph.is_control g "F");
  (match Graph.kind g "F" with
  | Graph.Kernel Graph.Transaction -> ()
  | _ -> Alcotest.fail "F should be a transaction kernel");
  Alcotest.(check (list string)) "control actors" [ "C" ] (Graph.control_actors g);
  Alcotest.(check int) "kernels" 5 (List.length (Graph.kernels g));
  Alcotest.(check (list string)) "parameters" [ "p" ] (Graph.parameters g)

(* ------------------------------------------------------------------ *)
(* Fig. 2 / Examples 1-2: consistency and repetition vector            *)
(* ------------------------------------------------------------------ *)

let test_fig2_repetition () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let rep = Analysis.repetition g in
  (* Equation (5): q = [2, 2p, p, p, 2p, 2p] *)
  Alcotest.check poly "q(A)" (p "2") (Csdf.Repetition.q_of rep "A");
  Alcotest.check poly "q(B)" (p "2*p") (Csdf.Repetition.q_of rep "B");
  Alcotest.check poly "q(C)" (p "p") (Csdf.Repetition.q_of rep "C");
  Alcotest.check poly "q(D)" (p "p") (Csdf.Repetition.q_of rep "D");
  Alcotest.check poly "q(E)" (p "2*p") (Csdf.Repetition.q_of rep "E");
  Alcotest.check poly "q(F)" (p "2*p") (Csdf.Repetition.q_of rep "F");
  (* Equation (5): r = [2, 2p, p, p, 2p, p] (F has two phases) *)
  Alcotest.check poly "r(F)" (p "p") (Csdf.Repetition.r_of rep "F");
  Alcotest.(check bool) "consistent" true (Analysis.consistent g)

let test_fig2_concrete_q () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let rep = Analysis.repetition g in
  let q = Csdf.Repetition.q_int rep (Valuation.of_list [ ("p", 3) ]) in
  Alcotest.(check (list (pair string int)))
    "q at p=3"
    [ ("A", 2); ("B", 6); ("C", 3); ("D", 3); ("E", 6); ("F", 6) ]
    q

(* ------------------------------------------------------------------ *)
(* Example 3 / Definition 3: control areas                             *)
(* ------------------------------------------------------------------ *)

let test_fig2_control_area () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let area = Analysis.control_area g "C" in
  (* Example 3: Area(C) = {B, D, E, F} *)
  Alcotest.(check (list string)) "members" [ "B"; "D"; "E"; "F" ] area.members;
  Alcotest.(check (list string)) "prec" [ "B" ] area.predecessors;
  Alcotest.(check (list string)) "succ" [ "F" ] area.successors;
  Alcotest.(check (list string)) "infl" [ "D"; "E" ] area.influenced;
  Alcotest.check_raises "non-control actor"
    (Invalid_argument "Analysis.control_area: B is not a control actor")
    (fun () -> ignore (Analysis.control_area g "B"))

(* ------------------------------------------------------------------ *)
(* Definition 4: local solutions                                       *)
(* ------------------------------------------------------------------ *)

let test_fig2_local_solution () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let rep = Analysis.repetition g in
  let area = Analysis.control_area g "C" in
  (* qG(Area(C)) = gcd(2p, p, 2p, p) = p *)
  Alcotest.check poly "qG" (p "p") (Analysis.local_scaling g rep area.members);
  let local = Analysis.local_solution g rep area.members in
  (* Example 3: local iteration B^2 C D E^2 F^2 *)
  Alcotest.check frac "qL(B)" (Frac.of_int 2) (List.assoc "B" local);
  Alcotest.check frac "qL(D)" (Frac.of_int 1) (List.assoc "D" local);
  Alcotest.check frac "qL(E)" (Frac.of_int 2) (List.assoc "E" local);
  Alcotest.check frac "qL(F)" (Frac.of_int 2) (List.assoc "F" local)

let test_cumulative_symbolic () =
  let rates = Csdf.Graph.const_rates [ 1; 0; 2 ] in
  let cum n = Analysis.cumulative_symbolic rates (Frac.of_int n) in
  Alcotest.(check (option frac)) "k=4" (Some (Frac.of_int 4)) (cum 4);
  (* symbolic multiple of tau *)
  let n = Frac.mul (Frac.of_int 3) (Expr.parse "p") in
  Alcotest.(check (option frac)) "3p firings"
    (Some (Frac.mul (Expr.parse "p") (Frac.of_int 3)))
    (Analysis.cumulative_symbolic rates n);
  (* uniform rates with arbitrary symbolic count *)
  let uni = Csdf.Graph.const_rates [ 2; 2 ] in
  Alcotest.(check (option frac)) "uniform"
    (Some (Frac.mul (Expr.parse "p") (Frac.of_int 2)))
    (Analysis.cumulative_symbolic uni (Expr.parse "p"));
  (* non-uniform, non-multiple symbolic count is not expressible *)
  Alcotest.(check (option frac)) "inexpressible" None
    (Analysis.cumulative_symbolic rates (Expr.parse "p"))

(* ------------------------------------------------------------------ *)
(* Definition 5 / Theorem 2: rate safety and boundedness               *)
(* ------------------------------------------------------------------ *)

let test_fig2_rate_safe () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  (match Analysis.rate_safety g with
  | Ok () -> ()
  | Error vs ->
      List.iter (fun (v : Analysis.violation) -> Printf.printf "violation: %s\n" v.reason) vs;
      Alcotest.fail "fig2 must be rate safe");
  Alcotest.(check bool) "rate_safe" true (Analysis.rate_safe g)

let test_fig3_rate_safe () =
  Alcotest.(check bool) "fig3 safe" true (Analysis.rate_safe (Examples.fig3 ()))

let test_unsafe_control () =
  let g = Examples.unsafe_control () in
  Alcotest.(check bool) "still consistent" true (Analysis.consistent g);
  match Analysis.rate_safety g with
  | Ok () -> Alcotest.fail "unsafe graph accepted"
  | Error vs -> Alcotest.(check bool) "violations reported" true (List.length vs >= 1)

let test_fig2_boundedness () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let b = Analysis.check_boundedness g ~samples:(Liveness.default_samples g) in
  Alcotest.(check bool) "consistent" true b.consistent;
  Alcotest.(check bool) "rate safe" true b.rate_safe;
  Alcotest.(check bool) "live" true b.live;
  Alcotest.(check bool) "bounded" true b.bounded

let test_unsafe_not_bounded () =
  let g = Examples.unsafe_control () in
  let b = Analysis.check_boundedness g ~samples:(Liveness.default_samples g) in
  Alcotest.(check bool) "not bounded" false b.bounded;
  Alcotest.(check bool) "notes explain" true (b.notes <> [])

(* ------------------------------------------------------------------ *)
(* Scenario-based buffer analysis                                      *)
(* ------------------------------------------------------------------ *)

let test_fig2_buffer_scenarios () =
  let { Examples.graph = g; e } = Examples.fig2 () in
  let v = Valuation.of_list [ ("p", 4) ] in
  let full = Buffers.csdf_equivalent g v in
  let take_e6 = Buffers.analyze g v ~scenario:[ ("F", "take_e6") ] in
  let take_e7 = Buffers.analyze g v ~scenario:[ ("F", "take_e7") ] in
  Alcotest.(check bool) "scenario never larger" true
    (take_e6.Csdf.Buffers.total <= full.Csdf.Buffers.total
    && take_e7.Csdf.Buffers.total <= full.Csdf.Buffers.total);
  (* the rejected channel does not appear in the scenario report *)
  Alcotest.(check bool) "e7 masked out in take_e6" true
    (not (List.mem_assoc e.(6) take_e6.Csdf.Buffers.per_channel));
  Alcotest.(check bool) "e6 masked out in take_e7" true
    (not (List.mem_assoc e.(5) take_e7.Csdf.Buffers.per_channel))

let test_buffer_scenario_validation () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let v = Valuation.of_list [ ("p", 2) ] in
  (match Buffers.analyze g v ~scenario:[ ("F", "nope") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown mode accepted");
  match Buffers.analyze g v ~scenario:[ ("ZZZ", "m") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown kernel accepted"

(* ------------------------------------------------------------------ *)
(* Mode semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_mode_activity () =
  let m = Mode.make ~inputs:(Mode.Input_subset [ 1; 2 ]) "m" in
  Alcotest.(check bool) "in subset" true (Mode.input_may_be_active m 1);
  Alcotest.(check bool) "not in subset" false (Mode.input_may_be_active m 3);
  Alcotest.(check bool) "outputs all" true (Mode.output_may_be_active m 7);
  let hp = Mode.make ~inputs:Mode.Highest_priority_available "hp" in
  Alcotest.(check bool) "hp conservative" true (Mode.input_may_be_active hp 42)

(* ------------------------------------------------------------------ *)
(* SPDF-style two-parameter pipeline (§V)                              *)
(* ------------------------------------------------------------------ *)

let test_spdf_pipeline () =
  let g = Examples.spdf_sample_rate () in
  let rep = Analysis.repetition g in
  Alcotest.check poly "q(src) = q" (p "q") (Csdf.Repetition.q_of rep "src");
  Alcotest.check poly "q(up) = q" (p "q") (Csdf.Repetition.q_of rep "up");
  Alcotest.check poly "q(down) = p" (p "p") (Csdf.Repetition.q_of rep "down");
  Alcotest.check poly "q(snk) = p" (p "p") (Csdf.Repetition.q_of rep "snk");
  (* live for several (p, q) pairs, including coprime ones *)
  List.iter
    (fun (pv, qv) ->
      Alcotest.(check bool)
        (Printf.sprintf "live at p=%d q=%d" pv qv)
        true
        (Liveness.is_live g (Valuation.of_list [ ("p", pv); ("q", qv) ])))
    [ (1, 1); (3, 2); (2, 3); (5, 7) ]

let () =
  Alcotest.run "tpdf"
    [
      ( "graph",
        [
          Alcotest.test_case "control channels" `Quick test_control_channel_validation;
          Alcotest.test_case "mode validation" `Quick test_mode_validation;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "kinds" `Quick test_kinds;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "repetition (Eq 5)" `Quick test_fig2_repetition;
          Alcotest.test_case "concrete q" `Quick test_fig2_concrete_q;
          Alcotest.test_case "control area (Ex 3)" `Quick test_fig2_control_area;
          Alcotest.test_case "local solution (Def 4)" `Quick test_fig2_local_solution;
        ] );
      ( "rate-safety",
        [
          Alcotest.test_case "cumulative symbolic" `Quick test_cumulative_symbolic;
          Alcotest.test_case "fig2 safe (Def 5)" `Quick test_fig2_rate_safe;
          Alcotest.test_case "fig3 safe" `Quick test_fig3_rate_safe;
          Alcotest.test_case "unsafe detected" `Quick test_unsafe_control;
        ] );
      ( "boundedness",
        [
          Alcotest.test_case "fig2 bounded (Thm 2)" `Quick test_fig2_boundedness;
          Alcotest.test_case "unsafe not bounded" `Quick test_unsafe_not_bounded;
        ] );
      ( "buffers",
        [
          Alcotest.test_case "fig2 scenarios" `Quick test_fig2_buffer_scenarios;
          Alcotest.test_case "scenario validation" `Quick test_buffer_scenario_validation;
        ] );
      ("modes", [ Alcotest.test_case "activity" `Quick test_mode_activity ]);
      ("spdf", [ Alcotest.test_case "two parameters" `Quick test_spdf_pipeline ]);
    ]
