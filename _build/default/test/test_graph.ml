open Tpdf_graph

let mk_graph edges =
  let g = Digraph.create () in
  List.iter (fun (a, b) -> ignore (Digraph.add_edge g a b ())) edges;
  g

let sorted l = List.sort compare l

let test_basics () =
  let g = Digraph.create () in
  Digraph.add_vertex g "a";
  Digraph.add_vertex g "a";
  let e1 = Digraph.add_edge g "a" "b" "x" in
  let e2 = Digraph.add_edge g "a" "b" "y" in
  Alcotest.(check int) "two parallel edges" 2 (Digraph.nb_edges g);
  Alcotest.(check int) "vertices" 2 (Digraph.nb_vertices g);
  Alcotest.(check bool) "distinct ids" true (e1 <> e2);
  Alcotest.(check string) "find_edge label" "y" (Digraph.find_edge g e2).label;
  Alcotest.(check (list string)) "succ dedup" [ "b" ] (Digraph.succ g "a");
  Alcotest.(check (list string)) "pred" [ "a" ] (Digraph.pred g "b");
  Alcotest.(check int) "out degree" 2 (List.length (Digraph.out_edges g "a"));
  Alcotest.(check int) "in degree" 2 (List.length (Digraph.in_edges g "b"))

let test_insertion_order () =
  let g = mk_graph [ ("c", "a"); ("a", "b") ] in
  Alcotest.(check (list string)) "vertex order" [ "c"; "a"; "b" ]
    (Digraph.vertices g)

let test_connected () =
  Alcotest.(check bool) "empty connected" true
    (Digraph.is_weakly_connected (Digraph.create () : (string, unit) Digraph.t));
  let g = mk_graph [ ("a", "b"); ("b", "c") ] in
  Alcotest.(check bool) "chain connected" true (Digraph.is_weakly_connected g);
  Digraph.add_vertex g "lonely";
  Alcotest.(check bool) "isolated vertex" false (Digraph.is_weakly_connected g);
  let h = mk_graph [ ("a", "b"); ("c", "b") ] in
  Alcotest.(check bool) "weakly connected despite direction" true
    (Digraph.is_weakly_connected h)

let test_sccs () =
  let g = mk_graph [ ("a", "b"); ("b", "c"); ("c", "a"); ("c", "d"); ("d", "e"); ("e", "d") ] in
  let comps = List.map sorted (Digraph.sccs g) in
  Alcotest.(check bool) "abc component" true (List.mem [ "a"; "b"; "c" ] comps);
  Alcotest.(check bool) "de component" true (List.mem [ "d"; "e" ] comps);
  Alcotest.(check int) "component count" 2 (List.length comps)

let test_nontrivial_sccs () =
  let g = mk_graph [ ("a", "b"); ("b", "c") ] in
  Alcotest.(check int) "dag has none" 0 (List.length (Digraph.nontrivial_sccs g));
  ignore (Digraph.add_edge g "c" "c" ());
  Alcotest.(check int) "self loop counts" 1
    (List.length (Digraph.nontrivial_sccs g))

let test_cycle_detection () =
  let dag = mk_graph [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ] in
  Alcotest.(check bool) "dag" false (Digraph.has_cycle dag);
  let cyc = mk_graph [ ("a", "b"); ("b", "a") ] in
  Alcotest.(check bool) "cycle" true (Digraph.has_cycle cyc)

let test_topo_sort () =
  let g = mk_graph [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ] in
  (match Digraph.topological_sort g with
  | None -> Alcotest.fail "dag must sort"
  | Some order ->
      let pos v =
        let rec idx i = function
          | [] -> Alcotest.fail "missing vertex"
          | x :: _ when x = v -> i
          | _ :: rest -> idx (i + 1) rest
        in
        idx 0 order
      in
      List.iter
        (fun (e : (string, unit) Digraph.edge) ->
          Alcotest.(check bool) "edge respects order" true (pos e.src < pos e.dst))
        (Digraph.edges g));
  let cyc = mk_graph [ ("a", "b"); ("b", "a") ] in
  Alcotest.(check bool) "cycle has no topo sort" true
    (Digraph.topological_sort cyc = None)

let test_map_edges () =
  let g = mk_graph [ ("a", "b"); ("b", "c") ] in
  (* merge b and c into a single vertex "bc" *)
  let g' =
    Digraph.map_edges g
      (fun v -> if v = "b" || v = "c" then "bc" else v)
      (fun _ -> ())
  in
  Alcotest.(check int) "merged vertices" 2 (Digraph.nb_vertices g');
  Alcotest.(check int) "edges kept" 2 (Digraph.nb_edges g');
  let self =
    List.filter (fun (e : (string, unit) Digraph.edge) -> e.src = e.dst)
      (Digraph.edges g')
  in
  Alcotest.(check int) "self loop from merge" 1 (List.length self)

let test_subgraph () =
  let g = mk_graph [ ("a", "b"); ("b", "c"); ("a", "c") ] in
  let s = Digraph.subgraph g (fun v -> v <> "c") in
  Alcotest.(check int) "vertices" 2 (Digraph.nb_vertices s);
  Alcotest.(check int) "edges" 1 (List.length (Digraph.edges s));
  (* ids preserved *)
  let e = List.hd (Digraph.edges s) in
  let orig = Digraph.find_edge g e.id in
  Alcotest.(check string) "same src" orig.src e.src

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_dot_output () =
  let g = mk_graph [ ("a", "b") ] in
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Digraph.pp_dot ~vertex_name:(fun v -> v) ppf g;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "mentions edge" true (contains s "\"a\" -> \"b\"");
  Alcotest.(check bool) "digraph header" true (contains s "digraph g {")

let test_find_edge_unknown () =
  let g = mk_graph [ ("a", "b") ] in
  match Digraph.find_edge g 99 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown edge id accepted"

let test_self_loop_handling () =
  let g = Digraph.create () in
  let e = Digraph.add_edge g "a" "a" "loop" in
  ignore (Digraph.add_edge g "a" "b" "out");
  (* incident lists a self-loop once *)
  Alcotest.(check int) "incident: loop once + out once + nothing in" 2
    (List.length (Digraph.incident g "a"));
  Alcotest.(check (list string)) "succ includes self" [ "a"; "b" ]
    (List.sort compare (Digraph.succ g "a"));
  Alcotest.(check bool) "self loop is a cycle" true (Digraph.has_cycle g);
  Alcotest.(check string) "label kept" "loop" (Digraph.find_edge g e).label

let test_map_edges_labels () =
  (* the label transformer sees the original endpoints *)
  let g = Digraph.create () in
  ignore (Digraph.add_edge g "a" "b" "?");
  let g' =
    Digraph.map_edges g
      (fun v -> v)
      (fun (e : (string, string) Digraph.edge) ->
        Printf.sprintf "%s->%s" e.src e.dst)
  in
  Alcotest.(check string) "label transformed" "a->b"
    (List.hd (Digraph.edges g')).label

let test_sccs_reverse_topological () =
  (* condensation order: a component appears before its successors *)
  let g = mk_graph [ ("a", "b"); ("b", "a"); ("b", "c"); ("c", "d"); ("d", "c") ] in
  let comps = List.map sorted (Digraph.sccs g) in
  let pos c =
    let rec idx i = function
      | [] -> Alcotest.fail "missing component"
      | x :: _ when x = c -> i
      | _ :: rest -> idx (i + 1) rest
    in
    idx 0 comps
  in
  (* reverse topological: the sink component {c,d} is completed (and thus
     listed) before its predecessor {a,b} *)
  Alcotest.(check bool) "cd before ab" true (pos [ "c"; "d" ] < pos [ "a"; "b" ])

let () =
  Alcotest.run "graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "insertion order" `Quick test_insertion_order;
          Alcotest.test_case "connectivity" `Quick test_connected;
          Alcotest.test_case "sccs" `Quick test_sccs;
          Alcotest.test_case "nontrivial sccs" `Quick test_nontrivial_sccs;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "topological sort" `Quick test_topo_sort;
          Alcotest.test_case "map_edges" `Quick test_map_edges;
          Alcotest.test_case "subgraph" `Quick test_subgraph;
          Alcotest.test_case "dot output" `Quick test_dot_output;
          Alcotest.test_case "find_edge unknown" `Quick test_find_edge_unknown;
          Alcotest.test_case "self loops" `Quick test_self_loop_handling;
          Alcotest.test_case "map_edges labels" `Quick test_map_edges_labels;
          Alcotest.test_case "scc order" `Quick test_sccs_reverse_topological;
        ] );
    ]
