open Tpdf_core
open Tpdf_sched
open Tpdf_param
module Csdf = Tpdf_csdf
module Platform = Tpdf_platform.Platform

let node a i = { Canonical_period.actor = a; index = i }

let fig2_concrete p =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  (g, Csdf.Concrete.make (Graph.skeleton g) (Valuation.of_list [ ("p", p) ]))

(* ------------------------------------------------------------------ *)
(* ADF                                                                 *)
(* ------------------------------------------------------------------ *)

let test_adf_simple () =
  let g = Csdf.Examples.producer_consumer ~prod:2 ~cons:1 in
  let conc = Csdf.Concrete.make g Valuation.empty in
  let ch = (List.hd (Csdf.Graph.channels g)).Tpdf_graph.Digraph.id in
  (* consumer firings 0 and 1 both depend on producer firing 0 *)
  Alcotest.(check (option int)) "n=0" (Some 0)
    (Adf.producer_firing conc ~channel:ch ~consumer_index:0);
  Alcotest.(check (option int)) "n=1" (Some 0)
    (Adf.producer_firing conc ~channel:ch ~consumer_index:1)

let test_adf_initial_tokens () =
  let g = Csdf.Graph.create () in
  Csdf.Graph.add_actor g "P" ~phases:1;
  Csdf.Graph.add_actor g "C" ~phases:1;
  let ch =
    Csdf.Graph.add_channel g ~src:"P" ~dst:"C"
      ~prod:(Csdf.Graph.const_rates [ 1 ])
      ~cons:(Csdf.Graph.const_rates [ 1 ])
      ~init:2 ()
  in
  let conc = Csdf.Concrete.make g Valuation.empty in
  Alcotest.(check (option int)) "covered by initials" None
    (Adf.producer_firing conc ~channel:ch ~consumer_index:0);
  Alcotest.(check (option int)) "still covered" None
    (Adf.producer_firing conc ~channel:ch ~consumer_index:1);
  Alcotest.(check (option int)) "first real dep" (Some 0)
    (Adf.producer_firing conc ~channel:ch ~consumer_index:2)

let test_adf_cyclostatic () =
  (* producer [1,0,2], consumer [2] *)
  let g = Csdf.Graph.create () in
  Csdf.Graph.add_actor g "P" ~phases:3;
  Csdf.Graph.add_actor g "C" ~phases:1;
  let ch =
    Csdf.Graph.add_channel g ~src:"P" ~dst:"C"
      ~prod:(Csdf.Graph.const_rates [ 1; 0; 2 ])
      ~cons:(Csdf.Graph.const_rates [ 2 ])
      ()
  in
  let conc = Csdf.Concrete.make g Valuation.empty in
  (* C0 needs 2 tokens: P must fire 3 times (1+0+2 >= 2) -> index 2 *)
  Alcotest.(check (option int)) "C0 <- P2" (Some 2)
    (Adf.producer_firing conc ~channel:ch ~consumer_index:0)

(* ------------------------------------------------------------------ *)
(* Canonical period (Fig. 5)                                           *)
(* ------------------------------------------------------------------ *)

let test_fig5_nodes () =
  let _, conc = fig2_concrete 1 in
  let period = Canonical_period.build conc in
  (* Fig 5: A1 A2 B1 B2 C1 D1 E1 E2 F1 F2 (q at p=1 = [2,2,1,1,2,2]) *)
  Alcotest.(check int) "10 firings" 10 (Canonical_period.node_count period);
  let names =
    List.map
      (fun n -> Printf.sprintf "%s%d" n.Canonical_period.actor (n.Canonical_period.index + 1))
      (Canonical_period.nodes period)
  in
  Alcotest.(check (list string)) "node names"
    [ "A1"; "A2"; "B1"; "B2"; "C1"; "D1"; "E1"; "E2"; "F1"; "F2" ]
    names

let test_fig5_dependencies () =
  let _, conc = fig2_concrete 1 in
  let period = Canonical_period.build conc in
  let deps = Canonical_period.deps period in
  let has p s = List.mem (p, s) deps in
  (* B1 needs A1 (A produces p=1 token, B consumes 1) *)
  Alcotest.(check bool) "A1 -> B1" true (has (node "A" 0) (node "B" 0));
  Alcotest.(check bool) "A2 -> B2" true (has (node "A" 1) (node "B" 1));
  (* C1 needs both B firings (consumes 2) *)
  Alcotest.(check bool) "B2 -> C1" true (has (node "B" 1) (node "C" 0));
  (* F1 needs C1 (control token) and D1 *)
  Alcotest.(check bool) "C1 -> F1" true (has (node "C" 0) (node "F" 0));
  Alcotest.(check bool) "D1 -> F1" true (has (node "D" 0) (node "F" 0));
  (* E1 only needs B1 *)
  Alcotest.(check bool) "B1 -> E1" true (has (node "B" 0) (node "E" 0));
  (* sequential self-order *)
  Alcotest.(check bool) "A1 -> A2" true (has (node "A" 0) (node "A" 1))

let test_topological_valid () =
  let _, conc = fig2_concrete 3 in
  let period = Canonical_period.build conc in
  let order = Canonical_period.topological period in
  Alcotest.(check int) "complete order" (Canonical_period.node_count period)
    (List.length order);
  let pos = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.replace pos n i) order;
  List.iter
    (fun (p, s) ->
      Alcotest.(check bool) "edge respected" true
        (Hashtbl.find pos p < Hashtbl.find pos s))
    (Canonical_period.deps period)

let test_critical_path () =
  let _, conc = fig2_concrete 1 in
  let period = Canonical_period.build conc in
  let cp = Canonical_period.critical_path_length period ~durations:(fun _ -> 1.0) in
  (* A1 -> B1 -> B2 -> C1 -> F1 -> F2 is 6 unit-length firings
     (B2 needs A2? no: A1 gives 1 token, B1 consumes it; B2 needs A2) *)
  Alcotest.(check bool) "critical path at least 5" true (cp >= 5.0);
  Alcotest.(check bool) "bounded by node count" true (cp <= 10.0)

let test_include_actor_filter () =
  let _, conc = fig2_concrete 1 in
  let period =
    Canonical_period.build ~include_actor:(fun a -> a <> "E") conc
  in
  Alcotest.(check int) "E's firings dropped" 8 (Canonical_period.node_count period);
  Alcotest.(check bool) "no E nodes" true
    (List.for_all
       (fun n -> n.Canonical_period.actor <> "E")
       (Canonical_period.nodes period))

let test_multi_iteration_expansion () =
  let _, conc = fig2_concrete 1 in
  let period = Canonical_period.build ~iterations:2 conc in
  Alcotest.(check int) "double nodes" 20 (Canonical_period.node_count period)

(* ------------------------------------------------------------------ *)
(* List scheduler                                                      *)
(* ------------------------------------------------------------------ *)

let test_schedule_respects_deps () =
  let g, conc = fig2_concrete 2 in
  let period = Canonical_period.build conc in
  let platform = Platform.uniform 4 in
  let s = List_scheduler.run ~graph:g period platform in
  List.iter
    (fun (p, succ) ->
      let ap = List_scheduler.assignment_of s p in
      let as_ = List_scheduler.assignment_of s succ in
      Alcotest.(check bool) "dep ordering in time" true
        (ap.List_scheduler.finish_ms <= as_.List_scheduler.start_ms +. 1e-9))
    (Canonical_period.deps period)

let test_schedule_no_pe_overlap () =
  let g, conc = fig2_concrete 2 in
  let period = Canonical_period.build conc in
  let platform = Platform.uniform 3 in
  let s = List_scheduler.run ~graph:g period platform in
  let by_pe = Hashtbl.create 8 in
  List.iter
    (fun (a : List_scheduler.assignment) ->
      let l = try Hashtbl.find by_pe a.pe with Not_found -> [] in
      Hashtbl.replace by_pe a.pe (a :: l))
    s.List_scheduler.assignments;
  Hashtbl.iter
    (fun _ l ->
      let l =
        List.sort (fun a b -> compare a.List_scheduler.start_ms b.List_scheduler.start_ms) l
      in
      let rec check = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "no overlap" true
              (a.List_scheduler.finish_ms <= b.List_scheduler.start_ms +. 1e-9);
            check rest
        | _ -> ()
      in
      check l)
    by_pe

let test_control_on_reserved_pe () =
  let g, conc = fig2_concrete 1 in
  let period = Canonical_period.build conc in
  let platform = Platform.uniform 4 in
  let s = List_scheduler.run ~graph:g period platform in
  (* Fig 5: C1 is mapped onto a separate processing element (PE 0). *)
  Alcotest.(check int) "C on PE0" 0 (List_scheduler.pe_of s (node "C" 0));
  List.iter
    (fun (a : List_scheduler.assignment) ->
      if a.node.Canonical_period.actor <> "C" then
        Alcotest.(check bool) "kernels off PE0" true (a.pe <> 0))
    s.List_scheduler.assignments

let test_more_pes_not_slower () =
  let g, conc = fig2_concrete 4 in
  let period = Canonical_period.build conc in
  let m n =
    (List_scheduler.run ~graph:g period (Platform.uniform n)).List_scheduler.makespan_ms
  in
  Alcotest.(check bool) "2 -> 8 PEs helps or equal" true (m 8 <= m 2)

let test_makespan_lower_bound () =
  let g, conc = fig2_concrete 2 in
  let period = Canonical_period.build conc in
  let cp = Canonical_period.critical_path_length period ~durations:(fun _ -> 1.0) in
  let s = List_scheduler.run ~graph:g period (Platform.uniform 16) in
  Alcotest.(check bool) "makespan >= critical path" true
    (s.List_scheduler.makespan_ms >= cp -. 1e-9)

let test_gantt_renders () =
  let g, conc = fig2_concrete 1 in
  let period = Canonical_period.build conc in
  let platform = Platform.uniform 4 in
  let s = List_scheduler.run ~graph:g period platform in
  let out = Gantt.render platform s in
  Alcotest.(check bool) "mentions makespan" true
    (String.length out > 0
    &&
    let rec contains i =
      i + 8 <= String.length out
      && (String.sub out i 8 = "makespan" || contains (i + 1))
    in
    contains 0)

(* ------------------------------------------------------------------ *)
(* Throughput                                                          *)
(* ------------------------------------------------------------------ *)

let test_throughput_chain_single_pe () =
  (* On one PE, the steady-state period of a unit-rate chain is the sum of
     its firing durations. *)
  let g = Csdf.Examples.chain 4 in
  let tg = Graph.of_csdf g in
  let conc = Csdf.Concrete.make g Valuation.empty in
  let period =
    Throughput.iteration_period_ms ~graph:tg conc (Platform.uniform 1)
  in
  Alcotest.(check (float 1e-6)) "4 unit firings" 4.0 period

let test_throughput_pipelining_helps () =
  let g = Csdf.Examples.chain 6 in
  let tg = Graph.of_csdf g in
  let conc = Csdf.Concrete.make g Valuation.empty in
  let p n = Throughput.iteration_period_ms ~graph:tg conc (Platform.uniform n) in
  Alcotest.(check bool)
    (Printf.sprintf "p(6)=%.2f < p(1)=%.2f" (p 6) (p 1))
    true (p 6 < p 1);
  Alcotest.(check bool) "period at least the bottleneck" true (p 6 >= 1.0 -. 1e-9)

let test_throughput_monotone_in_pes () =
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let conc = Csdf.Concrete.make (Graph.skeleton g) (Valuation.of_list [ ("p", 2) ]) in
  let p n = Throughput.iteration_period_ms ~graph:g conc (Platform.uniform n) in
  Alcotest.(check bool) "8 PEs <= 2 PEs" true (p 8 <= p 2 +. 1e-9);
  Alcotest.(check bool) "positive" true (p 8 > 0.0)

let test_throughput_per_s () =
  let g = Csdf.Examples.chain 2 in
  let tg = Graph.of_csdf g in
  let conc = Csdf.Concrete.make g Valuation.empty in
  let thr = Throughput.throughput_per_s ~graph:tg conc (Platform.uniform 1) in
  Alcotest.(check (float 1e-6)) "1000/2" 500.0 thr

let test_utilization () =
  let g, conc = fig2_concrete 2 in
  let period = Canonical_period.build conc in
  let s = List_scheduler.run ~graph:g period (Platform.uniform 4) in
  let u = List_scheduler.utilization s in
  Alcotest.(check bool) "some PEs used" true (List.length u >= 2);
  List.iter
    (fun (_, frac) ->
      Alcotest.(check bool) "fraction in (0,1]" true (frac > 0.0 && frac <= 1.0 +. 1e-9))
    u;
  (* total busy time equals the total work (10 unit firings... p=2: 18) *)
  let busy = List.fold_left (fun acc (_, f) -> acc +. (f *. s.List_scheduler.makespan_ms)) 0.0 u in
  Alcotest.(check (float 1e-6)) "work conserved" 18.0 busy

(* ------------------------------------------------------------------ *)
(* Maximum cycle ratio                                                 *)
(* ------------------------------------------------------------------ *)

let test_mcr_chain () =
  (* A unit-rate chain: each actor's self-loop gives a cycle of ratio 1;
     the unlimited-processor period is 1 firing duration. *)
  let g = Csdf.Examples.chain 5 in
  let conc = Csdf.Concrete.make g Valuation.empty in
  let h = Mcr.build conc in
  Alcotest.(check (float 1e-6)) "period 1" 1.0 (Mcr.iteration_period_ms h)

let test_mcr_multirate_chain () =
  (* s0 -(3,1)-> s1: q = [1, 3]; s1's three sequential firings form the
     bottleneck cycle of ratio 3. *)
  let g = Csdf.Examples.chain ~rates:[ (3, 1) ] 2 in
  let conc = Csdf.Concrete.make g Valuation.empty in
  let h = Mcr.build conc in
  Alcotest.(check (float 1e-6)) "period 3" 3.0 (Mcr.iteration_period_ms h)

let test_mcr_weighted () =
  let g = Csdf.Examples.chain 3 in
  let conc = Csdf.Concrete.make g Valuation.empty in
  let h = Mcr.build conc in
  let durations (n : Mcr.node) = if n.Mcr.actor = "s1" then 7.0 else 1.0 in
  Alcotest.(check (float 1e-6)) "slowest actor dominates" 7.0
    (Mcr.iteration_period_ms ~durations h)

let test_mcr_cycle_with_tokens () =
  (* X <-> Y with one initial token: the cycle X Y X Y ... has 2 units of
     work per token round-trip -> period 2. *)
  let g = Csdf.Graph.create () in
  Csdf.Graph.add_actor g "X" ~phases:1;
  Csdf.Graph.add_actor g "Y" ~phases:1;
  ignore
    (Csdf.Graph.add_channel g ~src:"X" ~dst:"Y"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ());
  ignore
    (Csdf.Graph.add_channel g ~src:"Y" ~dst:"X"
       ~prod:(Csdf.Graph.const_rates [ 1 ])
       ~cons:(Csdf.Graph.const_rates [ 1 ])
       ~init:1 ());
  let conc = Csdf.Concrete.make g Valuation.empty in
  Alcotest.(check (float 1e-6)) "round trip of 2" 2.0
    (Mcr.iteration_period_ms (Mcr.build conc))

let test_mcr_more_tokens_faster () =
  (* doubling the tokens in the cycle halves the period *)
  let mk init =
    let g = Csdf.Graph.create () in
    Csdf.Graph.add_actor g "X" ~phases:1;
    Csdf.Graph.add_actor g "Y" ~phases:1;
    ignore
      (Csdf.Graph.add_channel g ~src:"X" ~dst:"Y"
         ~prod:(Csdf.Graph.const_rates [ 1 ])
         ~cons:(Csdf.Graph.const_rates [ 1 ])
         ());
    ignore
      (Csdf.Graph.add_channel g ~src:"Y" ~dst:"X"
         ~prod:(Csdf.Graph.const_rates [ 1 ])
         ~cons:(Csdf.Graph.const_rates [ 1 ])
         ~init ());
    Mcr.iteration_period_ms (Mcr.build (Csdf.Concrete.make g Valuation.empty))
  in
  Alcotest.(check bool)
    (Printf.sprintf "p(2 tokens)=%.2f < p(1 token)=%.2f" (mk 2) (mk 1))
    true
    (mk 2 < mk 1)

let test_mcr_lower_bounds_throughput () =
  (* The list-scheduled steady-state period can never beat the MCR. *)
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let conc = Csdf.Concrete.make (Graph.skeleton g) (Valuation.of_list [ ("p", 3) ]) in
  let mcr = Mcr.iteration_period_ms (Mcr.build conc) in
  let sched = Throughput.iteration_period_ms ~graph:g conc (Platform.uniform 16) in
  Alcotest.(check bool)
    (Printf.sprintf "sched %.3f >= mcr %.3f" sched mcr)
    true
    (sched >= mcr -. 1e-6)

let test_mcr_dead_graph_rejected () =
  let conc = Csdf.Concrete.make (Csdf.Examples.deadlocked_cycle ()) Valuation.empty in
  match Mcr.build conc with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "dead graph expanded"

(* ------------------------------------------------------------------ *)
(* Latency                                                             *)
(* ------------------------------------------------------------------ *)

let test_latency_basics () =
  let g, conc = fig2_concrete 2 in
  let period = Canonical_period.build conc in
  let s = List_scheduler.run ~graph:g period (Platform.uniform 4) in
  (match Latency.end_to_end_ms s ~source:"A" ~sink:"F" with
  | Some l ->
      Alcotest.(check bool) "positive latency" true (l > 0.0);
      Alcotest.(check bool) "bounded by makespan" true
        (l <= s.List_scheduler.makespan_ms +. 1e-9)
  | None -> Alcotest.fail "A and F both fire");
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9)))) "unknown actor"
    None
    (Latency.actor_span_ms s "nope")

let test_latency_per_iteration () =
  let g, conc = fig2_concrete 1 in
  let period = Canonical_period.build ~iterations:3 conc in
  let s = List_scheduler.run ~graph:g period (Platform.uniform 4) in
  let lats =
    Latency.per_iteration_ms s ~source:"A" ~sink:"F" ~iterations:3 ~q_source:2
      ~q_sink:2
  in
  Alcotest.(check int) "three latencies" 3 (List.length lats);
  List.iter
    (fun l -> Alcotest.(check bool) "positive" true (l > 0.0))
    lats;
  Alcotest.check_raises "missing firing"
    (Invalid_argument "Latency: firing A[6] not in the schedule") (fun () ->
      ignore
        (Latency.per_iteration_ms s ~source:"A" ~sink:"F" ~iterations:50
           ~q_source:2 ~q_sink:2))

(* ------------------------------------------------------------------ *)
(* Platform model                                                      *)
(* ------------------------------------------------------------------ *)

let test_platform_custom_comm () =
  let comm =
    { Platform.local_latency_ms = 0.5; remote_latency_ms = 2.0;
      control_latency_ms = 0.1 }
  in
  let p = Platform.make ~comm ~clusters:2 ~pes_per_cluster:2 () in
  Alcotest.(check (float 1e-12)) "local" 0.5 (Platform.latency_ms p ~src:0 ~dst:1);
  Alcotest.(check (float 1e-12)) "remote" 2.0 (Platform.latency_ms p ~src:0 ~dst:2);
  Alcotest.(check (float 1e-12)) "control" 0.1 (Platform.control_latency_ms p);
  match
    Platform.make
      ~comm:{ comm with Platform.local_latency_ms = -1.0 }
      ~clusters:1 ~pes_per_cluster:1 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative latency accepted"

let test_remote_latency_keeps_chain_local () =
  (* With an enormous cross-PE cost, the scheduler should keep a dependent
     chain on a single PE. *)
  let g = Csdf.Examples.chain 5 in
  let tg = Graph.of_csdf g in
  let conc = Csdf.Concrete.make g Valuation.empty in
  let period = Canonical_period.build conc in
  let comm =
    { Platform.local_latency_ms = 1000.0; remote_latency_ms = 1000.0;
      control_latency_ms = 0.0 }
  in
  let platform = Platform.make ~comm ~clusters:1 ~pes_per_cluster:4 () in
  let s = List_scheduler.run ~graph:tg period platform in
  let pes =
    List.sort_uniq compare
      (List.map (fun (a : List_scheduler.assignment) -> a.pe) s.List_scheduler.assignments)
  in
  Alcotest.(check int) "single PE used" 1 (List.length pes);
  Alcotest.(check (float 1e-9)) "no latency paid" 5.0 s.List_scheduler.makespan_ms

let test_platform_basics () =
  let p = Platform.mppa256 () in
  Alcotest.(check int) "256 PEs" 256 (Platform.pe_count p);
  Alcotest.(check int) "16 clusters" 16 (Platform.clusters p);
  Alcotest.(check int) "PE 17 in cluster 1" 1 (Platform.cluster_of p 17);
  Alcotest.(check (float 1e-9)) "same PE free" 0.0 (Platform.latency_ms p ~src:3 ~dst:3);
  Alcotest.(check bool) "remote costlier than local" true
    (Platform.latency_ms p ~src:0 ~dst:255 > Platform.latency_ms p ~src:0 ~dst:1);
  Alcotest.check_raises "bad pe" (Invalid_argument "Platform.cluster_of: bad PE id 256")
    (fun () -> ignore (Platform.cluster_of p 256));
  match Platform.make ~clusters:0 ~pes_per_cluster:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero clusters accepted"

let () =
  Alcotest.run "sched"
    [
      ( "adf",
        [
          Alcotest.test_case "simple" `Quick test_adf_simple;
          Alcotest.test_case "initial tokens" `Quick test_adf_initial_tokens;
          Alcotest.test_case "cyclo-static" `Quick test_adf_cyclostatic;
        ] );
      ( "canonical-period",
        [
          Alcotest.test_case "fig5 nodes" `Quick test_fig5_nodes;
          Alcotest.test_case "fig5 dependencies" `Quick test_fig5_dependencies;
          Alcotest.test_case "topological" `Quick test_topological_valid;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "actor filter" `Quick test_include_actor_filter;
          Alcotest.test_case "multi-iteration" `Quick test_multi_iteration_expansion;
        ] );
      ( "list-scheduler",
        [
          Alcotest.test_case "dependencies respected" `Quick test_schedule_respects_deps;
          Alcotest.test_case "no PE overlap" `Quick test_schedule_no_pe_overlap;
          Alcotest.test_case "control PE reserved" `Quick test_control_on_reserved_pe;
          Alcotest.test_case "scaling" `Quick test_more_pes_not_slower;
          Alcotest.test_case "critical-path bound" `Quick test_makespan_lower_bound;
          Alcotest.test_case "gantt" `Quick test_gantt_renders;
          Alcotest.test_case "utilization" `Quick test_utilization;
        ] );
      ( "mcr",
        [
          Alcotest.test_case "unit chain" `Quick test_mcr_chain;
          Alcotest.test_case "multirate chain" `Quick test_mcr_multirate_chain;
          Alcotest.test_case "weighted" `Quick test_mcr_weighted;
          Alcotest.test_case "token cycle" `Quick test_mcr_cycle_with_tokens;
          Alcotest.test_case "more tokens faster" `Quick test_mcr_more_tokens_faster;
          Alcotest.test_case "bounds throughput" `Quick test_mcr_lower_bounds_throughput;
          Alcotest.test_case "dead graph" `Quick test_mcr_dead_graph_rejected;
        ] );
      ( "latency",
        [
          Alcotest.test_case "end-to-end" `Quick test_latency_basics;
          Alcotest.test_case "per iteration" `Quick test_latency_per_iteration;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "single PE chain" `Quick test_throughput_chain_single_pe;
          Alcotest.test_case "pipelining" `Quick test_throughput_pipelining_helps;
          Alcotest.test_case "monotone in PEs" `Quick test_throughput_monotone_in_pes;
          Alcotest.test_case "per second" `Quick test_throughput_per_s;
        ] );
      ( "platform",
        [
          Alcotest.test_case "basics" `Quick test_platform_basics;
          Alcotest.test_case "custom comm" `Quick test_platform_custom_comm;
          Alcotest.test_case "latency-aware placement" `Quick test_remote_latency_keeps_chain_local;
        ] );
    ]
