test/test_liveness.ml: Alcotest Analysis Array Examples Expr Graph List Liveness Poly Tpdf_core Tpdf_csdf Tpdf_graph Tpdf_param Valuation
