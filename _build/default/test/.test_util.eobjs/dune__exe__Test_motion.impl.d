test/test_motion.ml: Alcotest Array Float Image List Motion Printf String Synthetic Tpdf_apps Tpdf_core Tpdf_image Video_app
