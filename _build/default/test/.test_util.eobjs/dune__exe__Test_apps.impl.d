test/test_apps.ml: Alcotest Analysis Edge Edge_app Fm_radio Graph List Ofdm_app Printf String Tpdf_apps Tpdf_core Tpdf_csdf Tpdf_image Tpdf_param Tpdf_sim Valuation
