test/test_param.ml: Alcotest Expr Frac List Monomial Poly Printf Q QCheck QCheck_alcotest Tpdf_core Tpdf_param Tpdf_util Valuation
