test/test_param.mli:
