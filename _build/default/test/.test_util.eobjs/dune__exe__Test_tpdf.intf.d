test/test_tpdf.mli:
