test/test_util.ml: Alcotest Array Intmath List Prng Q QCheck QCheck_alcotest Tpdf_util
