test/test_sim.ml: Alcotest Array Behavior Engine Examples Graph List Mode String Token Tpdf_core Tpdf_csdf Tpdf_graph Tpdf_param Tpdf_sim Trace Valuation
