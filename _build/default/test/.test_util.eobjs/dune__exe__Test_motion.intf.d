test/test_motion.mli:
