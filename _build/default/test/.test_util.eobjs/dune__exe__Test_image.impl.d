test/test_image.ml: Alcotest Array Edge Image Kernels Lazy List Printf Synthetic Sys Tpdf_image
