test/test_csdf.mli:
