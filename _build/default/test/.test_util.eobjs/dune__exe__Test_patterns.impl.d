test/test_patterns.ml: Alcotest Behavior Engine Gen Graph Int List Patterns QCheck QCheck_alcotest Token Tpdf_core Tpdf_csdf Tpdf_param Tpdf_sim Valuation
