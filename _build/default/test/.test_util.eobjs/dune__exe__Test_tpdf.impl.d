test/test_tpdf.ml: Alcotest Analysis Array Buffers Examples Expr Frac Graph List Liveness Mode Poly Printf String Tpdf_core Tpdf_csdf Tpdf_param Valuation
