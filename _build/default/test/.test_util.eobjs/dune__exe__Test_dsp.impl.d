test/test_dsp.ml: Alcotest Array Channel Complex Fft Fir Float Gen List Modulation Ofdm Printf Prng QCheck QCheck_alcotest Tpdf_dsp Tpdf_util
