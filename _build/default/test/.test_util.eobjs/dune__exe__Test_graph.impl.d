test/test_graph.ml: Alcotest Buffer Digraph Format List Printf String Tpdf_graph
