test/test_csdf.ml: Alcotest Array Bounded Buffers Concrete Examples Expr Format Gen Graph List Poly QCheck QCheck_alcotest Repetition Sas Schedule Tpdf_csdf Tpdf_param Valuation
