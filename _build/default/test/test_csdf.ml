open Tpdf_csdf
open Tpdf_param

let poly = Alcotest.testable Poly.pp Poly.equal
let p = Expr.parse_poly

let no_valuation = Valuation.empty

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

let test_builder_validation () =
  let g = Graph.create () in
  Graph.add_actor g "a" ~phases:2;
  Alcotest.check_raises "duplicate actor"
    (Invalid_argument "Csdf.add_actor: duplicate actor a") (fun () ->
      Graph.add_actor g "a" ~phases:1);
  Alcotest.check_raises "bad phases"
    (Invalid_argument "Csdf.add_actor b: phases must be >= 1") (fun () ->
      Graph.add_actor g "b" ~phases:0);
  Graph.add_actor g "b" ~phases:1;
  (* rate sequence length must equal phase count *)
  (match
     Graph.add_channel g ~src:"a" ~dst:"b"
       ~prod:(Graph.const_rates [ 1 ])
       ~cons:(Graph.const_rates [ 1 ])
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "prod length mismatch accepted");
  (match
     Graph.add_channel g ~src:"a" ~dst:"nope"
       ~prod:(Graph.const_rates [ 1; 1 ])
       ~cons:(Graph.const_rates [ 1 ])
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown actor accepted");
  (match
     Graph.add_channel g ~src:"a" ~dst:"b"
       ~prod:(Graph.const_rates [ 1; 1 ])
       ~cons:(Graph.const_rates [ 1 ])
       ~init:(-1) ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative init accepted")

let test_totals () =
  let c =
    { Graph.prod = Graph.const_rates [ 1; 0; 1 ]; cons = [||]; init = 0 }
  in
  Alcotest.check poly "prod total" (p "2") (Graph.prod_total c)

let test_parameters () =
  let g = Examples.parametric_chain [ "p"; "q" ] in
  Alcotest.(check (list string)) "params" [ "p"; "q" ] (Graph.parameters g)

(* ------------------------------------------------------------------ *)
(* Fig. 1: repetition vector and schedule                              *)
(* ------------------------------------------------------------------ *)

let test_fig1_repetition () =
  let g = Examples.fig1 () in
  let rep = Repetition.solve g in
  Alcotest.check poly "q(a1)" (p "3") (Repetition.q_of rep "a1");
  Alcotest.check poly "q(a2)" (p "2") (Repetition.q_of rep "a2");
  Alcotest.check poly "q(a3)" (p "2") (Repetition.q_of rep "a3");
  (* r counts cycles: a1 has tau=3 so r=1 *)
  Alcotest.check poly "r(a1)" (p "1") (Repetition.r_of rep "a1");
  Alcotest.check poly "r(a3)" (p "2") (Repetition.r_of rep "a3")

let test_fig1_schedule () =
  let c = Concrete.make (Examples.fig1 ()) no_valuation in
  match Schedule.run ~policy:Schedule.Eager c with
  | Schedule.Deadlock _ -> Alcotest.fail "fig1 must be live"
  | Schedule.Complete t ->
      Alcotest.(check bool) "returns to initial state" true t.returned_to_initial;
      Alcotest.(check int) "7 firings" 7 (List.length t.firings);
      (* the paper's schedule (a3)^2 (a1)^3 (a2)^2 must be reachable: a3 is
         the only initially enabled actor *)
      let first = (List.hd t.firings).Schedule.actor in
      Alcotest.(check string) "a3 fires first" "a3" first

let test_fig1_paper_schedule_is_valid () =
  (* Replay (a3)^2 (a1)^3 (a2)^2 manually through the state machine by
     checking the Late_first policy finds exactly that shape. *)
  let c = Concrete.make (Examples.fig1 ()) no_valuation in
  match Schedule.run ~policy:Schedule.Late_first c with
  | Schedule.Deadlock _ -> Alcotest.fail "live"
  | Schedule.Complete t ->
      (* a3 is the only actor enabled initially, under any policy *)
      Alcotest.(check string) "starts with a3" "a3"
        (List.hd t.firings).Schedule.actor;
      Alcotest.(check int) "firing count" 7 (List.length t.firings);
      Alcotest.(check bool) "returns to initial" true t.returned_to_initial

let test_fig1_buffers () =
  let c = Concrete.make (Examples.fig1 ()) no_valuation in
  let r = Buffers.analyze c in
  Alcotest.(check bool) "positive total" true (r.Buffers.total > 0);
  List.iter
    (fun (_, n) -> Alcotest.(check bool) "per-channel >= init" true (n >= 0))
    r.Buffers.per_channel

(* ------------------------------------------------------------------ *)
(* Consistency                                                         *)
(* ------------------------------------------------------------------ *)

let test_inconsistent_graph () =
  let g = Graph.create () in
  Graph.add_actor g "a" ~phases:1;
  Graph.add_actor g "b" ~phases:1;
  ignore
    (Graph.add_channel g ~src:"a" ~dst:"b" ~prod:(Graph.const_rates [ 2 ])
       ~cons:(Graph.const_rates [ 1 ]) ());
  ignore
    (Graph.add_channel g ~src:"a" ~dst:"b" ~prod:(Graph.const_rates [ 1 ])
       ~cons:(Graph.const_rates [ 1 ]) ());
  Alcotest.(check bool) "inconsistent" false (Repetition.is_consistent g)

let test_disconnected_graph () =
  let g = Graph.create () in
  Graph.add_actor g "a" ~phases:1;
  Graph.add_actor g "b" ~phases:1;
  (match Repetition.solve g with
  | exception Repetition.Disconnected -> ()
  | _ -> Alcotest.fail "disconnected graph accepted")

let test_producer_consumer_ratio () =
  let g = Examples.producer_consumer ~prod:3 ~cons:2 in
  let rep = Repetition.solve g in
  Alcotest.check poly "q(P)" (p "2") (Repetition.q_of rep "P");
  Alcotest.check poly "q(C)" (p "3") (Repetition.q_of rep "C")

let test_parametric_repetition () =
  let g = Examples.parametric_chain [ "p"; "q" ] in
  let rep = Repetition.solve g in
  Alcotest.check poly "q(s0)" (p "1") (Repetition.q_of rep "s0");
  Alcotest.check poly "q(s1)" (p "p") (Repetition.q_of rep "s1");
  Alcotest.check poly "q(s2)" (p "p*q") (Repetition.q_of rep "s2")

let test_q_int_evaluation () =
  let g = Examples.parametric_chain [ "p" ] in
  let rep = Repetition.solve g in
  let q = Repetition.q_int rep (Valuation.of_list [ ("p", 4) ]) in
  Alcotest.(check (list (pair string int))) "concrete q"
    [ ("s0", 1); ("s1", 4) ] q

(* ------------------------------------------------------------------ *)
(* Cumulative rate functions                                           *)
(* ------------------------------------------------------------------ *)

let test_cumulative () =
  let rates = [| 1; 0; 2 |] in
  Alcotest.(check int) "X(0)" 0 (Concrete.cumulative rates 0);
  Alcotest.(check int) "X(1)" 1 (Concrete.cumulative rates 1);
  Alcotest.(check int) "X(2)" 1 (Concrete.cumulative rates 2);
  Alcotest.(check int) "X(3)" 3 (Concrete.cumulative rates 3);
  Alcotest.(check int) "X(4)" 4 (Concrete.cumulative rates 4);
  Alcotest.(check int) "X(7)" 7 (Concrete.cumulative rates 7)

let test_firings_needed () =
  let rates = [| 1; 0; 2 |] in
  Alcotest.(check int) "k=0" 0 (Concrete.firings_needed rates 0);
  Alcotest.(check int) "k=1" 1 (Concrete.firings_needed rates 1);
  Alcotest.(check int) "k=2" 3 (Concrete.firings_needed rates 2);
  Alcotest.(check int) "k=3" 3 (Concrete.firings_needed rates 3);
  Alcotest.(check int) "k=4" 4 (Concrete.firings_needed rates 4);
  Alcotest.(check int) "k=6" 6 (Concrete.firings_needed rates 6);
  Alcotest.check_raises "all zero"
    (Invalid_argument "Concrete.firings_needed: all-zero rate sequence")
    (fun () -> ignore (Concrete.firings_needed [| 0; 0 |] 1))

let prop_cumulative_monotone =
  QCheck.Test.make ~name:"cumulative is monotone and consistent with firings_needed"
    ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 1 5) (int_range 0 4)) (int_range 0 30))
    (fun (rates, n) ->
      let rates = Array.of_list rates in
      QCheck.assume (Array.fold_left ( + ) 0 rates > 0);
      let x = Concrete.cumulative rates n and x' = Concrete.cumulative rates (n + 1) in
      x <= x'
      && Concrete.firings_needed rates x <= n
      && (x = 0 || Concrete.cumulative rates (Concrete.firings_needed rates x) >= x))

(* ------------------------------------------------------------------ *)
(* Liveness / deadlock                                                 *)
(* ------------------------------------------------------------------ *)

let test_deadlock_detected () =
  let c = Concrete.make (Examples.deadlocked_cycle ()) no_valuation in
  (match Schedule.run c with
  | Schedule.Deadlock { stuck; _ } ->
      Alcotest.(check bool) "both stuck" true
        (List.mem "X" stuck && List.mem "Y" stuck)
  | Schedule.Complete _ -> Alcotest.fail "deadlock expected");
  Alcotest.(check bool) "is_live false" false (Schedule.is_live c)

let test_cycle_with_tokens_live () =
  let g = Graph.create () in
  Graph.add_actor g "X" ~phases:1;
  Graph.add_actor g "Y" ~phases:1;
  ignore
    (Graph.add_channel g ~src:"X" ~dst:"Y" ~prod:(Graph.const_rates [ 1 ])
       ~cons:(Graph.const_rates [ 1 ]) ());
  ignore
    (Graph.add_channel g ~src:"Y" ~dst:"X" ~prod:(Graph.const_rates [ 1 ])
       ~cons:(Graph.const_rates [ 1 ]) ~init:1 ());
  Alcotest.(check bool) "live with one token" true
    (Schedule.is_live (Concrete.make g no_valuation))

let test_multiple_iterations () =
  let c = Concrete.make (Examples.fig1 ()) no_valuation in
  match Schedule.run ~iterations:3 c with
  | Schedule.Deadlock _ -> Alcotest.fail "live"
  | Schedule.Complete t ->
      Alcotest.(check int) "21 firings" 21 (List.length t.firings);
      Alcotest.(check bool) "back to initial" true t.returned_to_initial

let test_min_buffer_policy_smaller () =
  (* On a 1->N producer/consumer, the min-buffer policy should not exceed the
     eager policy's occupancy. *)
  let g = Examples.producer_consumer ~prod:4 ~cons:1 in
  let c = Concrete.make g no_valuation in
  let occ policy =
    match Schedule.run ~policy c with
    | Schedule.Complete t ->
        List.fold_left (fun acc (_, n) -> acc + n) 0 t.max_occupancy
    | Schedule.Deadlock _ -> Alcotest.fail "live"
  in
  Alcotest.(check bool) "min_buffer <= eager" true
    (occ Schedule.Min_buffer <= occ Schedule.Eager)

let test_compress () =
  let firings =
    [
      { Schedule.actor = "a"; phase = 0; index = 0 };
      { Schedule.actor = "a"; phase = 1; index = 1 };
      { Schedule.actor = "b"; phase = 0; index = 0 };
      { Schedule.actor = "a"; phase = 2; index = 2 };
    ]
  in
  Alcotest.(check (list (pair string int))) "rle"
    [ ("a", 2); ("b", 1); ("a", 1) ]
    (Schedule.compress firings)

(* ------------------------------------------------------------------ *)
(* Bounded channels                                                     *)
(* ------------------------------------------------------------------ *)

let test_bounded_lower_bound () =
  let g = Examples.producer_consumer ~prod:3 ~cons:2 in
  let c = Concrete.make g no_valuation in
  Alcotest.(check int) "max(init, prod, cons)" 3 (Bounded.lower_bound c 0)

let test_bounded_run_detects_blocking () =
  let g = Examples.producer_consumer ~prod:3 ~cons:2 in
  let c = Concrete.make g no_valuation in
  (match Bounded.run c ~capacities:(fun _ -> 3) with
  | Bounded.Blocked { full_channels; stuck } ->
      Alcotest.(check (list int)) "channel 0 full" [ 0 ] full_channels;
      Alcotest.(check bool) "P stuck" true (List.mem "P" stuck)
  | Bounded.Fits _ -> Alcotest.fail "capacity 3 cannot fit");
  match Bounded.run c ~capacities:(fun _ -> 4) with
  | Bounded.Fits { max_occupancy } ->
      Alcotest.(check (list (pair int int))) "peak 4" [ (0, 4) ] max_occupancy
  | Bounded.Blocked _ -> Alcotest.fail "capacity 4 suffices"

let test_bounded_capacity_below_init_rejected () =
  let g = Examples.fig1 () in
  let c = Concrete.make g no_valuation in
  match Bounded.run c ~capacities:(fun _ -> 1) with
  | exception Invalid_argument _ -> () (* e2 has 2 initial tokens *)
  | _ -> Alcotest.fail "capacity below initial tokens accepted"

let test_bounded_minimize_producer_consumer () =
  let g = Examples.producer_consumer ~prod:3 ~cons:2 in
  let c = Concrete.make g no_valuation in
  let r = Bounded.minimize c in
  Alcotest.(check (list (pair int int))) "minimal capacity 4" [ (0, 4) ]
    r.Bounded.capacities;
  Alcotest.(check int) "one relaxation" 1 r.Bounded.relaxations

let test_bounded_minimize_fig1 () =
  let c = Concrete.make (Examples.fig1 ()) no_valuation in
  let r = Bounded.minimize c in
  (* the found assignment must actually fit *)
  (match Bounded.run c ~capacities:(fun id -> List.assoc id r.Bounded.capacities) with
  | Bounded.Fits _ -> ()
  | Bounded.Blocked _ -> Alcotest.fail "minimize returned unusable capacities");
  List.iter
    (fun (id, cap) ->
      Alcotest.(check bool) "above the lower bound" true
        (cap >= Bounded.lower_bound c id))
    r.Bounded.capacities

let test_bounded_minimize_deadlocked () =
  let c = Concrete.make (Examples.deadlocked_cycle ()) no_valuation in
  match Bounded.minimize c with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "deadlocked graph minimized"

let prop_minimize_fits =
  QCheck.Test.make ~name:"minimized capacities always fit" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (prod, cons) ->
      let g = Examples.producer_consumer ~prod ~cons in
      let c = Concrete.make g Valuation.empty in
      let r = Bounded.minimize c in
      match Bounded.run c ~capacities:(fun id -> List.assoc id r.Bounded.capacities) with
      | Bounded.Fits _ -> true
      | Bounded.Blocked _ -> false)

(* ------------------------------------------------------------------ *)
(* Self-loop channels                                                   *)
(* ------------------------------------------------------------------ *)

let test_self_loop_state_channel () =
  (* A self-loop with initial tokens models actor-internal state; it is
     consistent iff its production and consumption totals match. *)
  let g = Graph.create () in
  Graph.add_actor g "A" ~phases:2;
  Graph.add_actor g "B" ~phases:1;
  ignore
    (Graph.add_channel g ~src:"A" ~dst:"A"
       ~prod:(Graph.const_rates [ 1; 1 ])
       ~cons:(Graph.const_rates [ 1; 1 ])
       ~init:1 ());
  ignore
    (Graph.add_channel g ~src:"A" ~dst:"B"
       ~prod:(Graph.const_rates [ 1; 0 ])
       ~cons:(Graph.const_rates [ 1 ])
       ());
  let rep = Repetition.solve g in
  Alcotest.check poly "q(A)" (p "2") (Repetition.q_of rep "A");
  Alcotest.check poly "q(B)" (p "1") (Repetition.q_of rep "B");
  let c = Concrete.make g no_valuation in
  (match Schedule.run c with
  | Schedule.Complete t ->
      Alcotest.(check bool) "state restored" true t.returned_to_initial
  | Schedule.Deadlock _ -> Alcotest.fail "live with the state token");
  (* without the state token the self-loop deadlocks *)
  let g2 = Graph.create () in
  Graph.add_actor g2 "A" ~phases:1;
  ignore
    (Graph.add_channel g2 ~src:"A" ~dst:"A"
       ~prod:(Graph.const_rates [ 1 ])
       ~cons:(Graph.const_rates [ 1 ])
       ());
  Alcotest.(check bool) "starved self-loop dead" false
    (Schedule.is_live (Concrete.make g2 no_valuation))

let test_self_loop_unbalanced_inconsistent () =
  let g = Graph.create () in
  Graph.add_actor g "A" ~phases:1;
  ignore
    (Graph.add_channel g ~src:"A" ~dst:"A"
       ~prod:(Graph.const_rates [ 2 ])
       ~cons:(Graph.const_rates [ 1 ])
       ~init:5 ());
  Alcotest.(check bool) "2-produce 1-consume loop inconsistent" false
    (Repetition.is_consistent g)

(* ------------------------------------------------------------------ *)
(* Single-appearance schedules                                          *)
(* ------------------------------------------------------------------ *)

let test_sas_fig1 () =
  let c = Concrete.make (Examples.fig1 ()) no_valuation in
  match Sas.find c with
  | None -> Alcotest.fail "fig1 has the SAS (a3)^2 (a1)^3 (a2)^2"
  | Some s ->
      Alcotest.(check bool) "valid" true (Sas.is_valid c s);
      Alcotest.(check (list (pair string int))) "the paper's SAS"
        [ ("a3", 2); ("a1", 3); ("a2", 2) ]
        s

let test_sas_chain () =
  let c = Concrete.make (Examples.chain ~rates:[ (2, 1); (3, 1) ] 3) no_valuation in
  match Sas.find c with
  | None -> Alcotest.fail "acyclic graphs always have a SAS"
  | Some s -> Alcotest.(check bool) "valid" true (Sas.is_valid c s)

let test_sas_none_for_tight_cycle () =
  (* X <-> Y with a single token must interleave: no SAS. *)
  let g = Graph.create () in
  Graph.add_actor g "X" ~phases:1;
  Graph.add_actor g "Y" ~phases:1;
  ignore
    (Graph.add_channel g ~src:"X" ~dst:"Y" ~prod:(Graph.const_rates [ 1 ])
       ~cons:(Graph.const_rates [ 1 ]) ());
  ignore
    (Graph.add_channel g ~src:"Y" ~dst:"X" ~prod:(Graph.const_rates [ 1 ])
       ~cons:(Graph.const_rates [ 1 ]) ~init:1 ());
  (* q = [1,1]: single firings, so a "burst" is one firing and the SAS
     X Y exists here; tighten with q = [2,2] via rates *)
  let g2 = Graph.create () in
  Graph.add_actor g2 "X" ~phases:1;
  Graph.add_actor g2 "Y" ~phases:1;
  ignore
    (Graph.add_channel g2 ~src:"X" ~dst:"Y" ~prod:(Graph.const_rates [ 1 ])
       ~cons:(Graph.const_rates [ 1 ]) ());
  ignore
    (Graph.add_channel g2 ~src:"Y" ~dst:"X" ~prod:(Graph.const_rates [ 1 ])
       ~cons:(Graph.const_rates [ 1 ]) ~init:1 ());
  (* force q=[2,2] by adding a rate-2 source *)
  Graph.add_actor g2 "S" ~phases:1;
  ignore
    (Graph.add_channel g2 ~src:"S" ~dst:"X" ~prod:(Graph.const_rates [ 2 ])
       ~cons:(Graph.const_rates [ 1 ]) ());
  let c1 = Concrete.make g no_valuation in
  Alcotest.(check bool) "trivial cycle has a SAS" true (Sas.find c1 <> None);
  let c2 = Concrete.make g2 no_valuation in
  (match Sas.find c2 with
  | None -> ()
  | Some s ->
      Alcotest.fail
        (Format.asprintf "unexpected SAS %a for the interleaving cycle" Sas.pp s))

let test_sas_is_valid_rejects () =
  let c = Concrete.make (Examples.fig1 ()) no_valuation in
  (* wrong order deadlocks in burst mode *)
  Alcotest.(check bool) "a1 first is invalid" false
    (Sas.is_valid c [ ("a1", 3); ("a2", 2); ("a3", 2) ]);
  (* wrong counts rejected *)
  Alcotest.(check bool) "wrong count" false
    (Sas.is_valid c [ ("a3", 1); ("a1", 3); ("a2", 2) ]);
  (* missing actor rejected *)
  Alcotest.(check bool) "missing actor" false
    (Sas.is_valid c [ ("a3", 2); ("a1", 3) ])

(* Property: for random consistent SDF chains, execution completes and
   returns to the initial state. *)
let prop_chain_live =
  QCheck.Test.make ~name:"random rate-matched chains are live" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 4) (pair (int_range 1 4) (int_range 1 4)))
    (fun rates ->
      QCheck.assume (rates <> []);
      let g = Examples.chain ~rates (List.length rates + 1) in
      let c = Concrete.make g Valuation.empty in
      match Schedule.run c with
      | Schedule.Complete t -> t.returned_to_initial
      | Schedule.Deadlock _ -> false)

let () =
  Alcotest.run "csdf"
    [
      ( "graph",
        [
          Alcotest.test_case "builder validation" `Quick test_builder_validation;
          Alcotest.test_case "totals" `Quick test_totals;
          Alcotest.test_case "parameters" `Quick test_parameters;
        ] );
      ( "fig1",
        [
          Alcotest.test_case "repetition vector" `Quick test_fig1_repetition;
          Alcotest.test_case "schedule" `Quick test_fig1_schedule;
          Alcotest.test_case "late policy" `Quick test_fig1_paper_schedule_is_valid;
          Alcotest.test_case "buffers" `Quick test_fig1_buffers;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "inconsistent" `Quick test_inconsistent_graph;
          Alcotest.test_case "disconnected" `Quick test_disconnected_graph;
          Alcotest.test_case "producer/consumer" `Quick test_producer_consumer_ratio;
          Alcotest.test_case "parametric chain" `Quick test_parametric_repetition;
          Alcotest.test_case "q_int" `Quick test_q_int_evaluation;
        ] );
      ( "cumulative",
        [
          Alcotest.test_case "cumulative" `Quick test_cumulative;
          Alcotest.test_case "firings_needed" `Quick test_firings_needed;
          QCheck_alcotest.to_alcotest prop_cumulative_monotone;
        ] );
      ( "self-loop",
        [
          Alcotest.test_case "state channel" `Quick test_self_loop_state_channel;
          Alcotest.test_case "unbalanced" `Quick test_self_loop_unbalanced_inconsistent;
        ] );
      ( "sas",
        [
          Alcotest.test_case "fig1" `Quick test_sas_fig1;
          Alcotest.test_case "chain" `Quick test_sas_chain;
          Alcotest.test_case "interleaving cycle" `Quick test_sas_none_for_tight_cycle;
          Alcotest.test_case "is_valid" `Quick test_sas_is_valid_rejects;
        ] );
      ( "bounded",
        [
          Alcotest.test_case "lower bound" `Quick test_bounded_lower_bound;
          Alcotest.test_case "blocking detection" `Quick test_bounded_run_detects_blocking;
          Alcotest.test_case "init validation" `Quick test_bounded_capacity_below_init_rejected;
          Alcotest.test_case "minimize P/C" `Quick test_bounded_minimize_producer_consumer;
          Alcotest.test_case "minimize fig1" `Quick test_bounded_minimize_fig1;
          Alcotest.test_case "deadlocked input" `Quick test_bounded_minimize_deadlocked;
          QCheck_alcotest.to_alcotest prop_minimize_fits;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "deadlock" `Quick test_deadlock_detected;
          Alcotest.test_case "cycle with tokens" `Quick test_cycle_with_tokens_live;
          Alcotest.test_case "multiple iterations" `Quick test_multiple_iterations;
          Alcotest.test_case "min-buffer policy" `Quick test_min_buffer_policy_smaller;
          Alcotest.test_case "compress" `Quick test_compress;
          QCheck_alcotest.to_alcotest prop_chain_live;
        ] );
    ]
