open Tpdf_image

(* ------------------------------------------------------------------ *)
(* Image basics                                                        *)
(* ------------------------------------------------------------------ *)

let test_image_basics () =
  let img = Image.create ~width:4 ~height:3 in
  Alcotest.(check int) "width" 4 (Image.width img);
  Alcotest.(check int) "height" 3 (Image.height img);
  Image.set img 2 1 42.0;
  Alcotest.(check (float 0.0)) "get back" 42.0 (Image.get_exn img 2 1);
  (* clamped access *)
  Image.set img 0 0 7.0;
  Alcotest.(check (float 0.0)) "clamp negative" 7.0 (Image.get img (-5) (-5));
  Image.set img 3 2 9.0;
  Alcotest.(check (float 0.0)) "clamp overflow" 9.0 (Image.get img 100 100);
  Alcotest.check_raises "oob set" (Invalid_argument "Image: (4,0) out of 4x3")
    (fun () -> Image.set img 4 0 1.0);
  match Image.create ~width:0 ~height:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero width accepted"

let test_image_ops () =
  let img = Image.init ~width:3 ~height:3 (fun x y -> float_of_int (x + y)) in
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Image.mean img);
  Alcotest.(check (float 0.0)) "max" 4.0 (Image.max_value img);
  Alcotest.(check (float 0.0)) "min" 0.0 (Image.min_value img);
  let t = Image.threshold img 2.0 in
  Alcotest.(check int) "3 above threshold" 3 (Image.nonzero_count t);
  let c = Image.copy img in
  Image.set c 0 0 99.0;
  Alcotest.(check (float 0.0)) "copy is deep" 0.0 (Image.get img 0 0);
  Alcotest.(check bool) "equal self" true (Image.equal img img);
  Alcotest.(check bool) "not equal after edit" false (Image.equal img c)

(* ------------------------------------------------------------------ *)
(* Synthetic scenes                                                    *)
(* ------------------------------------------------------------------ *)

let test_synthetic_determinism () =
  let a = Synthetic.scene ~seed:3 ~width:64 ~height:64 () in
  let b = Synthetic.scene ~seed:3 ~width:64 ~height:64 () in
  Alcotest.(check bool) "same seed same image" true (Image.equal a b);
  let c = Synthetic.scene ~seed:4 ~width:64 ~height:64 () in
  Alcotest.(check bool) "different seed differs" false (Image.equal a c)

let test_synthetic_range () =
  let img = Synthetic.scene ~seed:1 ~width:128 ~height:128 () in
  Alcotest.(check bool) "within 0..255" true
    (Image.min_value img >= 0.0 && Image.max_value img <= 255.0)

let test_checkerboard () =
  let img = Synthetic.checkerboard ~square:8 ~width:32 ~height:32 () in
  Alcotest.(check (float 0.0)) "first square" 230.0 (Image.get img 0 0);
  Alcotest.(check (float 0.0)) "second square" 25.0 (Image.get img 8 0);
  Alcotest.(check (float 0.0)) "diagonal back" 230.0 (Image.get img 8 8)

(* ------------------------------------------------------------------ *)
(* Convolution                                                         *)
(* ------------------------------------------------------------------ *)

let test_convolve_identity () =
  let img = Synthetic.scene ~seed:2 ~width:32 ~height:32 () in
  let id = [| 0.; 0.; 0.; 0.; 1.; 0.; 0.; 0.; 0. |] in
  Alcotest.(check bool) "identity kernel" true (Image.equal img (Kernels.convolve3 img id))

let test_convolve_validation () =
  let img = Image.create ~width:4 ~height:4 in
  (match Kernels.convolve img ~size:2 [| 1.; 1.; 1.; 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "even kernel accepted");
  match Kernels.convolve img ~size:3 [| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong kernel length accepted"

let test_gaussian_normalized () =
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0
    (Array.fold_left ( +. ) 0.0 Kernels.gaussian5)

let test_compass_masks () =
  Alcotest.(check int) "8 prewitt masks" 8 (Array.length Kernels.prewitt_compass);
  Alcotest.(check int) "8 kirsch masks" 8 (Array.length Kernels.kirsch_compass);
  (* every rotation keeps the multiset of coefficients *)
  let sorted a = List.sort compare (Array.to_list a) in
  let base = sorted Kernels.prewitt_compass.(0) in
  Array.iter
    (fun m -> Alcotest.(check (list (float 0.0))) "same coefficients" base (sorted m))
    Kernels.prewitt_compass;
  (* rotations are pairwise distinct *)
  for i = 0 to 7 do
    for j = i + 1 to 7 do
      Alcotest.(check bool) "distinct rotations" false
        (Kernels.prewitt_compass.(i) = Kernels.prewitt_compass.(j))
    done
  done

(* ------------------------------------------------------------------ *)
(* Edge detectors                                                      *)
(* ------------------------------------------------------------------ *)

let scene64 = lazy (Synthetic.scene ~seed:11 ~width:64 ~height:64 ())

let test_detectors_find_edges () =
  let img = Lazy.force scene64 in
  List.iter
    (fun d ->
      let edges = Edge.run d img in
      let found = Image.nonzero_count edges in
      Alcotest.(check bool)
        (Printf.sprintf "%s finds edges (%d px)" (Edge.name d) found)
        true (found > 20))
    Edge.all

let test_detectors_silent_on_constant () =
  let img = Synthetic.constant ~value:100.0 ~width:64 ~height:64 () in
  List.iter
    (fun d ->
      let edges = Edge.run d img in
      Alcotest.(check int)
        (Printf.sprintf "%s silent on flat image" (Edge.name d))
        0 (Image.nonzero_count edges))
    Edge.all

let test_detectors_binary_output () =
  let img = Lazy.force scene64 in
  List.iter
    (fun d ->
      let edges = Edge.run d img in
      let ok =
        Image.fold (fun acc v -> acc && (v = 0.0 || v = 255.0)) true edges
      in
      Alcotest.(check bool) (Edge.name d ^ " binary") true ok)
    Edge.all

let test_checkerboard_edges_located () =
  (* On a checkerboard, Sobel edges must lie near the square boundaries. *)
  let img = Synthetic.checkerboard ~square:16 ~width:64 ~height:64 () in
  let edges = Edge.sobel img in
  let misplaced = ref 0 in
  for y = 2 to 61 do
    for x = 2 to 61 do
      if Image.get edges x y > 0.0 then
        let near_boundary =
          let m v = v mod 16 in
          m x >= 14 || m x <= 1 || m y >= 14 || m y <= 1
        in
        if not near_boundary then incr misplaced
    done
  done;
  Alcotest.(check int) "no stray edges" 0 !misplaced

let test_canny_thinner_than_sobel () =
  (* Non-maximum suppression must give Canny thinner contours. *)
  let img = Synthetic.checkerboard ~square:16 ~width:64 ~height:64 () in
  let canny = Image.nonzero_count (Edge.canny img) in
  let sobel = Image.nonzero_count (Edge.sobel ~threshold:60.0 img) in
  Alcotest.(check bool)
    (Printf.sprintf "canny (%d) <= sobel (%d)" canny sobel)
    true
    (canny <= sobel && canny > 0)

let test_canny_hysteresis_connectivity () =
  (* A weak-but-connected ramp should be kept by hysteresis, an isolated
     weak blob dropped. *)
  let img = Image.create ~width:32 ~height:32 in
  (* strong vertical edge at x=10..11, weak continuation below *)
  for y = 0 to 31 do
    for x = 0 to 31 do
      Image.set img x y (if x <= 10 then 50.0 else 180.0)
    done
  done;
  let edges = Edge.canny img in
  Alcotest.(check bool) "the edge survives" true (Image.nonzero_count edges > 10)

let test_quality_ordering () =
  let qualities = List.map Edge.quality Edge.all in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "qualities strictly increase" true (increasing qualities)

let test_model_durations_ordering () =
  (* The model must reproduce the paper's cost ordering
     quick < sobel < prewitt < canny (Fig. 6 table). *)
  let ms d = Edge.model_duration_ms d ~width:1024 ~height:1024 in
  Alcotest.(check bool) "quick < sobel" true (ms Edge.Quick_mask < ms Edge.Sobel);
  Alcotest.(check bool) "sobel < prewitt" true (ms Edge.Sobel < ms Edge.Prewitt);
  Alcotest.(check bool) "prewitt < canny" true (ms Edge.Prewitt < ms Edge.Canny);
  (* absolute calibration: close to the paper's 200/473/522/1040 ms *)
  Alcotest.(check bool) "quick ~200ms" true (abs_float (ms Edge.Quick_mask -. 200.0) < 20.0);
  Alcotest.(check bool) "canny ~1040ms" true (abs_float (ms Edge.Canny -. 1040.0) < 60.0)

let test_real_costs_ordered () =
  (* Wall-clock ordering on a real (small) image: the cheap single-mask
     detector must beat the 8-mask compass ones, and Canny must be the
     slowest.  Repeated to stabilize timings. *)
  let img = Synthetic.scene ~seed:20 ~width:96 ~height:96 () in
  let time d =
    let t0 = Sys.time () in
    for _ = 1 to 3 do
      ignore (Edge.run d img)
    done;
    Sys.time () -. t0
  in
  let tq = time Edge.Quick_mask in
  let tp = time Edge.Prewitt in
  let tc = time Edge.Canny in
  Alcotest.(check bool)
    (Printf.sprintf "quick (%.4f) < prewitt (%.4f)" tq tp)
    true (tq < tp);
  Alcotest.(check bool)
    (Printf.sprintf "prewitt (%.4f) < canny (%.4f)" tp tc)
    true (tp < tc)

let () =
  Alcotest.run "image"
    [
      ( "image",
        [
          Alcotest.test_case "basics" `Quick test_image_basics;
          Alcotest.test_case "ops" `Quick test_image_ops;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "determinism" `Quick test_synthetic_determinism;
          Alcotest.test_case "range" `Quick test_synthetic_range;
          Alcotest.test_case "checkerboard" `Quick test_checkerboard;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "identity" `Quick test_convolve_identity;
          Alcotest.test_case "validation" `Quick test_convolve_validation;
          Alcotest.test_case "gaussian" `Quick test_gaussian_normalized;
          Alcotest.test_case "compass masks" `Quick test_compass_masks;
        ] );
      ( "edge",
        [
          Alcotest.test_case "find edges" `Quick test_detectors_find_edges;
          Alcotest.test_case "silent on flat" `Quick test_detectors_silent_on_constant;
          Alcotest.test_case "binary output" `Quick test_detectors_binary_output;
          Alcotest.test_case "edges located" `Quick test_checkerboard_edges_located;
          Alcotest.test_case "canny thin" `Quick test_canny_thinner_than_sobel;
          Alcotest.test_case "hysteresis" `Quick test_canny_hysteresis_connectivity;
          Alcotest.test_case "quality order" `Quick test_quality_ordering;
          Alcotest.test_case "model durations" `Quick test_model_durations_ordering;
          Alcotest.test_case "real cost order" `Slow test_real_costs_ordered;
        ] );
    ]
