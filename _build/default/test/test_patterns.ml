open Tpdf_core
open Tpdf_sim
open Tpdf_param
module Csdf = Tpdf_csdf

let c = Csdf.Graph.const_rates

(* ------------------------------------------------------------------ *)
(* Pure voting rule                                                    *)
(* ------------------------------------------------------------------ *)

let test_vote_outcome () =
  let eq = Int.equal in
  Alcotest.(check (pair int int)) "clear majority" (7, 2)
    (Patterns.vote_outcome ~equal:eq [ 7; 3; 7 ]);
  Alcotest.(check (pair int int)) "unanimous" (1, 3)
    (Patterns.vote_outcome ~equal:eq [ 1; 1; 1 ]);
  (* ties go to the earliest value *)
  Alcotest.(check (pair int int)) "tie -> first" (5, 1)
    (Patterns.vote_outcome ~equal:eq [ 5; 9 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Patterns.vote_outcome: no votes")
    (fun () -> ignore (Patterns.vote_outcome ~equal:eq []))

let prop_vote_majority =
  QCheck.Test.make ~name:"a strict majority always wins" ~count:200
    QCheck.(pair (int_bound 5) (list_of_size (Gen.int_range 0 4) (int_bound 5)))
    (fun (winner, noise) ->
      (* build a ballot where [winner] has |noise| + 1 votes *)
      let ballot = List.concat_map (fun v -> [ winner; v ]) noise @ [ winner ] in
      let w, _ = Patterns.vote_outcome ~equal:Int.equal ballot in
      w = winner)

(* ------------------------------------------------------------------ *)
(* Redundancy with vote: a triple-modular-redundancy stage             *)
(* ------------------------------------------------------------------ *)

(* SRC feeds three replicas; replica "bad" corrupts its value; the
   Transaction votes and must still deliver the correct result. *)
let tmr_graph () =
  let g = Graph.create () in
  Graph.add_kernel g "SRC";
  List.iter (fun r -> Graph.add_kernel g r) [ "r1"; "r2"; "bad" ];
  Graph.add_kernel g ~kind:Graph.Transaction "VOTE";
  Graph.add_kernel g "SNK";
  List.iter
    (fun r ->
      ignore (Graph.add_channel g ~src:"SRC" ~dst:r ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
      ignore (Graph.add_channel g ~src:r ~dst:"VOTE" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ()))
    [ "r1"; "r2"; "bad" ];
  ignore (Graph.add_channel g ~src:"VOTE" ~dst:"SNK" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  g

let test_redundancy_with_vote () =
  let g = tmr_graph () in
  let delivered = ref [] in
  let replica value_of =
    Behavior.make (fun ctx ->
        let v =
          match ctx.Behavior.inputs with
          | [ (_, [ Token.Data v ]) ] -> value_of v
          | _ -> Alcotest.fail "replica expects one token"
        in
        List.map
          (fun (ch, rate) -> (ch, List.init rate (fun _ -> Token.Data v)))
          ctx.Behavior.out_rates)
  in
  let behaviors =
    [
      ("SRC", Behavior.make (fun ctx ->
           List.map
             (fun (ch, rate) ->
               (ch, List.init rate (fun _ -> Token.Data (100 + ctx.Behavior.index))))
             ctx.Behavior.out_rates));
      ("r1", replica (fun v -> v * 2));
      ("r2", replica (fun v -> v * 2));
      ("bad", replica (fun v -> v * 2 + 13)); (* faulty replica *)
      ("VOTE", Patterns.majority_vote ~equal:Int.equal ());
      ("SNK", Behavior.sink (fun ctx ->
           List.iter
             (fun (_, toks) ->
               List.iter (fun t -> delivered := Token.data t :: !delivered) toks)
             ctx.Behavior.inputs));
    ]
  in
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~default:0 () in
  let (_ : Engine.stats) = Engine.run ~iterations:3 eng in
  (* the faulty replica never wins the vote *)
  Alcotest.(check (list int)) "correct values despite the fault"
    [ 200; 202; 204 ] (List.rev !delivered)

(* ------------------------------------------------------------------ *)
(* Speculation: first path to complete wins                            *)
(* ------------------------------------------------------------------ *)

let speculation_graph () =
  let g = Graph.create () in
  Graph.add_kernel g "SRC";
  Graph.add_kernel g "fastpath";
  Graph.add_kernel g "slowpath";
  Graph.add_kernel g ~kind:Graph.Transaction "SPEC";
  Graph.add_kernel g "SNK";
  Graph.add_control g ~clock_period_ms:3.0 "CLK";
  List.iter
    (fun r ->
      ignore (Graph.add_channel g ~src:"SRC" ~dst:r ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
      (* equal priorities: pure speculation, not quality ranking *)
      ignore (Graph.add_channel g ~src:r ~dst:"SPEC" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ()))
    [ "fastpath"; "slowpath" ];
  ignore (Graph.add_channel g ~src:"SPEC" ~dst:"SNK" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  ignore
    (Graph.add_control_channel g ~src:"CLK" ~dst:"SPEC" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  Graph.set_modes g "SPEC"
    [ Tpdf_core.Mode.make ~inputs:Tpdf_core.Mode.Highest_priority_available "first" ];
  g

let test_speculation () =
  let g = speculation_graph () in
  let winner = ref None in
  let behaviors =
    [
      ("SRC", Behavior.fill ~duration_ms:(Behavior.const_duration 0.1) 0);
      ( "fastpath",
        Behavior.make ~duration_ms:(Behavior.const_duration 1.0) (fun ctx ->
            List.map
              (fun (ch, rate) -> (ch, List.init rate (fun _ -> Token.Data 1)))
              ctx.Behavior.out_rates) );
      ( "slowpath",
        Behavior.make ~duration_ms:(Behavior.const_duration 50.0) (fun ctx ->
            List.map
              (fun (ch, rate) -> (ch, List.init rate (fun _ -> Token.Data 2)))
              ctx.Behavior.out_rates) );
      ("SPEC", Patterns.forward_selected ());
      ( "SNK",
        Behavior.sink (fun ctx ->
            match ctx.Behavior.inputs with
            | [ (_, [ Token.Data v ]) ] -> winner := Some v
            | _ -> Alcotest.fail "SNK expects one token") );
      ("CLK", Behavior.emit_mode (fun _ -> "first"));
    ]
  in
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~default:0 () in
  let stats = Engine.run eng in
  Alcotest.(check (option int)) "fast path won" (Some 1) !winner;
  (* the slow path's token is eventually produced and discarded *)
  let dropped = List.fold_left (fun acc (_, n) -> acc + n) 0 stats.Engine.dropped in
  Alcotest.(check int) "speculative token dropped" 1 dropped

let test_forward_selected_replicates () =
  (* output rate higher than input count: the last token is replicated *)
  let g = Graph.create () in
  Graph.add_kernel g "A";
  Graph.add_kernel g "T";
  Graph.add_kernel g "Z";
  ignore (Graph.add_channel g ~src:"A" ~dst:"T" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  ignore (Graph.add_channel g ~src:"T" ~dst:"Z" ~prod:(c [ 3 ]) ~cons:(c [ 3 ]) ());
  let seen = ref 0 in
  let behaviors =
    [
      ("A", Behavior.fill 9);
      ("T", Patterns.forward_selected ());
      ("Z", Behavior.sink (fun ctx ->
           List.iter (fun (_, toks) -> seen := !seen + List.length toks) ctx.Behavior.inputs));
    ]
  in
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~default:0 () in
  let (_ : Engine.stats) = Engine.run eng in
  Alcotest.(check int) "three replicated tokens" 3 !seen

let () =
  Alcotest.run "patterns"
    [
      ( "vote",
        [
          Alcotest.test_case "outcome" `Quick test_vote_outcome;
          QCheck_alcotest.to_alcotest prop_vote_majority;
          Alcotest.test_case "TMR end-to-end" `Quick test_redundancy_with_vote;
        ] );
      ( "speculation",
        [
          Alcotest.test_case "first wins" `Quick test_speculation;
          Alcotest.test_case "replication" `Quick test_forward_selected_replicates;
        ] );
    ]
