open Tpdf_image
open Tpdf_apps

let shifted_pair ~size ~dx ~dy =
  let base = Synthetic.scene ~seed:8 ~noise:0.0 ~width:size ~height:size () in
  let current =
    Image.init ~width:size ~height:size (fun x y -> Image.get base (x - dx) (y - dy))
  in
  (base, current)

(* ------------------------------------------------------------------ *)
(* Motion estimation                                                   *)
(* ------------------------------------------------------------------ *)

let count_vector field v =
  Array.fold_left
    (fun acc (u : Motion.vector) -> if u = v then acc + 1 else acc)
    0 field.Motion.vectors

let test_full_search_finds_global_shift () =
  let reference, current = shifted_pair ~size:64 ~dx:3 ~dy:2 in
  let field = Motion.full_search ~block:16 ~range:7 ~reference current in
  (* interior blocks must all report (3, 2); border blocks may clamp *)
  let majority = count_vector field { Motion.dx = 3; dy = 2 } in
  Alcotest.(check bool)
    (Printf.sprintf "most blocks find (3,2): %d/16" majority)
    true (majority >= 12)

let test_tss_close_to_full () =
  let reference, current = shifted_pair ~size:64 ~dx:2 ~dy:1 in
  let full = Motion.full_search ~block:16 ~range:7 ~reference current in
  let tss = Motion.three_step_search ~block:16 ~range:7 ~reference current in
  let r fld =
    Motion.residual_energy ~current
      ~prediction:(Motion.compensate ~reference fld)
  in
  Alcotest.(check bool) "tss within 2x of full" true (r tss <= (2.0 *. r full) +. 1.0);
  Alcotest.(check bool) "full residual tiny" true (r full < 1.0)

let test_quality_ordering () =
  let pairs = Video_app.residual_by_estimator ~size:64 ~block:16 ~range:7 () in
  let find e = List.assoc e pairs in
  Alcotest.(check bool) "full <= tss" true
    (find Video_app.Full_search <= find Video_app.Tss +. 1e-9);
  Alcotest.(check bool) "tss <= zero" true
    (find Video_app.Tss <= find Video_app.Zero_mv +. 1e-9);
  Alcotest.(check bool) "zero is genuinely worse" true
    (find Video_app.Zero_mv > 10.0 *. Float.max 1e-6 (find Video_app.Full_search))

let test_zero_motion_identity () =
  let reference, _ = shifted_pair ~size:32 ~dx:0 ~dy:0 in
  let field = Motion.zero_motion ~block:16 ~reference reference in
  let prediction = Motion.compensate ~reference field in
  Alcotest.(check (float 1e-9)) "perfect prediction of itself" 0.0
    (Motion.residual_energy ~current:reference ~prediction)

let test_validation () =
  let a = Image.create ~width:32 ~height:32 in
  let b = Image.create ~width:16 ~height:32 in
  (match Motion.zero_motion ~block:16 ~reference:a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dimension mismatch accepted");
  (match Motion.zero_motion ~block:10 ~reference:a a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-divisible block accepted");
  match Motion.residual_energy ~current:a ~prediction:b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "residual dimension mismatch accepted"

let test_cost_model_ordering () =
  let ops k = Motion.estimate_cost_ops k ~block:16 ~range:7 in
  Alcotest.(check bool) "zero < tss" true (ops `Zero < ops `Tss);
  Alcotest.(check bool) "tss < full" true (ops `Tss < ops `Full);
  Alcotest.(check int) "full = (2r+1)^2 per pixel" (15 * 15 * 256) (ops `Full)

(* ------------------------------------------------------------------ *)
(* Video application                                                   *)
(* ------------------------------------------------------------------ *)

let test_video_static () =
  let g = Video_app.graph () in
  Alcotest.(check bool) "consistent" true (Tpdf_core.Analysis.consistent g);
  Alcotest.(check bool) "rate safe" true (Tpdf_core.Analysis.rate_safe g);
  match Tpdf_core.Graph.validate g with
  | Ok () -> ()
  | Error m -> Alcotest.fail (String.concat "; " m)

let test_video_tight_deadline_picks_cheap () =
  (* model costs at 128^2/block 16/range 7: zero ~0.4ms, tss ~10.5ms,
     full ~92ms (before the 2.2ms read+dup overhead). *)
  let r = Video_app.run ~frames:2 ~deadline_ms:8.0 () in
  Alcotest.(check int) "two frames" 2 (List.length r.Video_app.frames);
  List.iter
    (fun (f : Video_app.frame_result) ->
      Alcotest.(check string) "zero_mv chosen" "zero_mv"
        (Video_app.estimator_name f.Video_app.chosen))
    r.Video_app.frames

let test_video_loose_deadline_picks_best () =
  let r = Video_app.run ~frames:1 ~deadline_ms:150.0 () in
  match r.Video_app.frames with
  | [ f ] ->
      Alcotest.(check string) "full_search chosen" "full_search"
        (Video_app.estimator_name f.Video_app.chosen);
      Alcotest.(check bool) "high quality (low residual)" true
        (f.Video_app.residual < 5.0)
  | _ -> Alcotest.fail "expected one frame"

let test_video_quality_improves_with_deadline () =
  let residual_at deadline =
    match (Video_app.run ~frames:1 ~deadline_ms:deadline ()).Video_app.frames with
    | [ f ] -> f.Video_app.residual
    | _ -> Alcotest.fail "expected one frame"
  in
  let tight = residual_at 8.0 and medium = residual_at 20.0 in
  let loose = residual_at 150.0 in
  Alcotest.(check bool)
    (Printf.sprintf "residual decreases: %.1f >= %.1f >= %.1f" tight medium loose)
    true
    (tight >= medium -. 1e-9 && medium >= loose -. 1e-9 && loose < tight)

let () =
  Alcotest.run "motion"
    [
      ( "estimation",
        [
          Alcotest.test_case "full search" `Quick test_full_search_finds_global_shift;
          Alcotest.test_case "tss vs full" `Quick test_tss_close_to_full;
          Alcotest.test_case "quality order" `Quick test_quality_ordering;
          Alcotest.test_case "zero identity" `Quick test_zero_motion_identity;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "cost model" `Quick test_cost_model_ordering;
        ] );
      ( "video-app",
        [
          Alcotest.test_case "static" `Quick test_video_static;
          Alcotest.test_case "tight deadline" `Quick test_video_tight_deadline_picks_cheap;
          Alcotest.test_case "loose deadline" `Quick test_video_loose_deadline_picks_best;
          Alcotest.test_case "quality vs deadline" `Quick test_video_quality_improves_with_deadline;
        ] );
    ]
