module Csdf = Tpdf_csdf
module Digraph = Tpdf_graph.Digraph

type node = { actor : string; index : int }

type t = {
  node_list : node list;
  edge_list : (node * node) list;
  pred_tbl : (node, node list) Hashtbl.t;
  succ_tbl : (node, node list) Hashtbl.t;
}

let build ?(active_channel = fun _ -> true) ?(include_actor = fun _ -> true)
    ?(iterations = 1) conc =
  if iterations < 1 then
    invalid_arg "Canonical_period.build: iterations must be >= 1";
  let g = Csdf.Concrete.graph conc in
  let actors = List.filter include_actor (Csdf.Graph.actors g) in
  let count a = iterations * Csdf.Concrete.q conc a in
  let node_list =
    List.concat_map
      (fun a -> List.init (count a) (fun index -> { actor = a; index }))
      actors
  in
  let edges = ref [] in
  (* Sequential self-order: an actor is one iterated process. *)
  List.iter
    (fun a ->
      for n = 1 to count a - 1 do
        edges := ({ actor = a; index = n - 1 }, { actor = a; index = n }) :: !edges
      done)
    actors;
  (* Data dependencies via the ADF. *)
  List.iter
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      if active_channel e.id && include_actor e.src && include_actor e.dst
      then
        List.iter
          (fun (n, m) ->
            (* Dependencies beyond the expanded window (possible only for
               inconsistent windows) are clamped out. *)
            if m < count e.src then
              edges :=
                ({ actor = e.src; index = m }, { actor = e.dst; index = n })
                :: !edges)
          (Adf.consumer_deps conc ~channel:e.id ~consumer_count:(count e.dst)))
    (Csdf.Graph.channels g);
  let pred_tbl = Hashtbl.create 64 and succ_tbl = Hashtbl.create 64 in
  List.iter
    (fun n ->
      Hashtbl.replace pred_tbl n [];
      Hashtbl.replace succ_tbl n [])
    node_list;
  let dedup_edges =
    List.sort_uniq compare !edges
  in
  List.iter
    (fun (p, s) ->
      Hashtbl.replace pred_tbl s (p :: Hashtbl.find pred_tbl s);
      Hashtbl.replace succ_tbl p (s :: Hashtbl.find succ_tbl p))
    dedup_edges;
  { node_list; edge_list = dedup_edges; pred_tbl; succ_tbl }

let nodes t = t.node_list

let node_count t = List.length t.node_list

let deps t = t.edge_list

let preds t n = try Hashtbl.find t.pred_tbl n with Not_found -> []

let succs t n = try Hashtbl.find t.succ_tbl n with Not_found -> []

let topological t =
  let indeg = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace indeg n (List.length (preds t n))) t.node_list;
  let ready = Queue.create () in
  List.iter
    (fun n -> if Hashtbl.find indeg n = 0 then Queue.add n ready)
    t.node_list;
  let out = ref [] and seen = ref 0 in
  while not (Queue.is_empty ready) do
    let n = Queue.pop ready in
    out := n :: !out;
    incr seen;
    List.iter
      (fun s ->
        let d = Hashtbl.find indeg s - 1 in
        Hashtbl.replace indeg s d;
        if d = 0 then Queue.add s ready)
      (succs t n)
  done;
  if !seen <> List.length t.node_list then
    failwith "Canonical_period.topological: dependency cycle (graph not live)";
  List.rev !out

let critical_path_length t ~durations =
  let order = topological t in
  let finish = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let start =
        List.fold_left (fun acc p -> max acc (Hashtbl.find finish p)) 0.0 (preds t n)
      in
      Hashtbl.replace finish n (start +. durations n))
    order;
  Hashtbl.fold (fun _ f acc -> max acc f) finish 0.0

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun n -> Format.fprintf ppf "%s%d@," n.actor (n.index + 1))
    t.node_list;
  List.iter
    (fun (p, s) ->
      Format.fprintf ppf "%s%d -> %s%d@," p.actor (p.index + 1) s.actor
        (s.index + 1))
    t.edge_list;
  Format.fprintf ppf "@]"
