module Platform = Tpdf_platform.Platform

let render ?(width = 72) platform (s : List_scheduler.schedule) =
  let buf = Buffer.create 256 in
  let span = max s.List_scheduler.makespan_ms 1e-9 in
  let col t = int_of_float (float_of_int (width - 1) *. t /. span) in
  let used_pes =
    List.sort_uniq compare
      (List.map (fun a -> a.List_scheduler.pe) s.List_scheduler.assignments)
  in
  ignore (Platform.pe_count platform);
  List.iter
    (fun pe ->
      let row = Bytes.make width '.' in
      List.iter
        (fun (a : List_scheduler.assignment) ->
          if a.pe = pe then begin
            let c0 = col a.start_ms and c1 = max (col a.start_ms) (col a.finish_ms - 1) in
            let label =
              Printf.sprintf "%s%d" a.node.Canonical_period.actor
                (a.node.Canonical_period.index + 1)
            in
            for i = c0 to min c1 (width - 1) do
              Bytes.set row i '#'
            done;
            String.iteri
              (fun i ch -> if c0 + i < width && c0 + i <= c1 then Bytes.set row (c0 + i) ch)
              label
          end)
        s.List_scheduler.assignments;
      Buffer.add_string buf (Printf.sprintf "PE%-3d |%s|\n" pe (Bytes.to_string row)))
    used_pes;
  Buffer.add_string buf
    (Printf.sprintf "makespan: %.3f ms over %d PE(s)\n"
       s.List_scheduler.makespan_ms (List.length used_pes));
  Buffer.contents buf
