(** Canonical-period expansion (§III-D, following ΣC \[9\]).

    The canonical period is the partial order of one iteration: a DAG whose
    vertices are, for each actor a, its q{_a} first firings, and whose edges
    are the data dependencies between those firings (computed with the
    {!Adf}).  Fig. 5 of the paper shows the canonical period of the Fig. 2
    graph for p = 1. *)

type node = { actor : string; index : int (** 0-based firing number *) }

type t

val build :
  ?active_channel:(int -> bool) ->
  ?include_actor:(string -> bool) ->
  ?iterations:int ->
  Tpdf_csdf.Concrete.t ->
  t
(** Expand [iterations] (default 1) iterations.  [active_channel] drops the
    dependencies of masked channels; [include_actor] drops the firings of
    deselected actors entirely (the ADF-based suppression of unnecessary
    firings when a control token rejects a branch). *)

val nodes : t -> node list
(** In deterministic (actor declaration, then index) order. *)

val node_count : t -> int

val deps : t -> (node * node) list
(** Edges (predecessor, successor): the successor may start only after the
    predecessor completes.  Includes the sequential self-order of each
    actor (firing n follows firing n-1). *)

val preds : t -> node -> node list
val succs : t -> node -> node list

val topological : t -> node list
(** A topological order (the DAG is acyclic by construction for live
    graphs).  @raise Failure if a cycle is detected, which indicates a
    non-live graph. *)

val critical_path_length : t -> durations:(node -> float) -> float
(** Length of the longest path under the given per-firing durations; the
    lower bound of any schedule's makespan. *)

val pp : Format.formatter -> t -> unit
(** Prints nodes as [A1 A2 B1 …] with their dependencies (1-based ordinal,
    matching Fig. 5's labelling). *)
