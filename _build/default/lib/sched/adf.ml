module Csdf = Tpdf_csdf

let producer_firing conc ~channel ~consumer_index =
  let ch = Csdf.Concrete.chan conc channel in
  let needed =
    Csdf.Concrete.cumulative ch.Csdf.Concrete.cons (consumer_index + 1)
    - ch.Csdf.Concrete.init
  in
  if needed <= 0 then None
  else Some (Csdf.Concrete.firings_needed ch.Csdf.Concrete.prod needed - 1)

let consumer_deps conc ~channel ~consumer_count =
  let rec go n acc =
    if n >= consumer_count then List.rev acc
    else
      match producer_firing conc ~channel ~consumer_index:n with
      | None -> go (n + 1) acc
      | Some m -> go (n + 1) ((n, m) :: acc)
  in
  go 0 []
