(** Text rendering of schedules, one row per processing element. *)

val render :
  ?width:int -> Tpdf_platform.Platform.t -> List_scheduler.schedule -> string
(** ASCII Gantt chart, [width] columns for the time axis (default 72).
    Only PEs that received work are shown. *)
