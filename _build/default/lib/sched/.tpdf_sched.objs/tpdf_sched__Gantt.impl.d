lib/sched/gantt.ml: Buffer Bytes Canonical_period List List_scheduler Printf String Tpdf_platform
