lib/sched/latency.mli: List_scheduler
