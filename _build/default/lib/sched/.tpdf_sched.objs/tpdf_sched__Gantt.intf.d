lib/sched/gantt.mli: List_scheduler Tpdf_platform
