lib/sched/canonical_period.mli: Format Tpdf_csdf
