lib/sched/adf.mli: Tpdf_csdf
