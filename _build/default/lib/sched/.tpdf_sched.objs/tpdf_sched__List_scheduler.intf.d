lib/sched/list_scheduler.mli: Canonical_period Format Tpdf_core Tpdf_platform
