lib/sched/list_scheduler.ml: Array Canonical_period Format Hashtbl List Tpdf_core Tpdf_platform
