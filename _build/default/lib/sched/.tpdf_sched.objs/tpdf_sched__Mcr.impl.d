lib/sched/mcr.ml: Array Float Hashtbl List Printf String Tpdf_csdf Tpdf_graph
