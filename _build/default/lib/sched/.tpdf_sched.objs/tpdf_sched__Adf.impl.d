lib/sched/adf.ml: List Tpdf_csdf
