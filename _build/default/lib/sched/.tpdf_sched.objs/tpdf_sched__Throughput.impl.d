lib/sched/throughput.ml: Canonical_period List_scheduler
