lib/sched/latency.ml: Canonical_period List List_scheduler Printf
