lib/sched/throughput.mli: Canonical_period Tpdf_core Tpdf_csdf Tpdf_platform
