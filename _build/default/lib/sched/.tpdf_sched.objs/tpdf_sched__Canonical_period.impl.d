lib/sched/canonical_period.ml: Adf Format Hashtbl List Queue Tpdf_csdf Tpdf_graph
