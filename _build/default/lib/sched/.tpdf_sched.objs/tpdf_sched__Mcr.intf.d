lib/sched/mcr.mli: Tpdf_csdf
