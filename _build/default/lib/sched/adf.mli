(** Actor Dependence Function (ref. \[8\] of the paper).

    The ADF gives, for the n-th firing of a consumer on a channel, the
    producer firing it depends on: the least m such that the initial tokens
    plus the production of the first m producer firings cover the
    consumption of the first n+1 consumer firings.  It drives both the
    canonical-period expansion (§III-D) and the suppression of unnecessary
    firings when a mode rejects an input. *)

val producer_firing :
  Tpdf_csdf.Concrete.t -> channel:int -> consumer_index:int -> int option
(** [producer_firing conc ~channel ~consumer_index:n] is [Some m] when the
    n-th (0-based) firing of the consumer needs the producer's m-th firing
    to have completed, [None] when initial tokens alone suffice.
    @raise Not_found on a bad channel id. *)

val consumer_deps :
  Tpdf_csdf.Concrete.t -> channel:int -> consumer_count:int -> (int * int) list
(** All dependencies [(n, m)] for consumer firings [0 … consumer_count-1],
    omitting firings satisfied by initial tokens. *)
