(** Generic directed multigraphs.

    Dataflow graphs are directed multigraphs (two actors may be linked by
    several channels), so edges carry a unique integer id next to their
    label.  Vertices can be any hashable type; dataflow layers use actor
    names (strings).

    The structure is mutable and grows monotonically; analyses treat it as
    immutable input. *)

type ('v, 'e) t

type ('v, 'e) edge = { id : int; src : 'v; dst : 'v; label : 'e }

val create : unit -> ('v, 'e) t

val add_vertex : ('v, 'e) t -> 'v -> unit
(** Idempotent. *)

val add_edge : ('v, 'e) t -> 'v -> 'v -> 'e -> int
(** Adds both endpoints if absent; returns the fresh edge id. *)

val mem_vertex : ('v, 'e) t -> 'v -> bool

val vertices : ('v, 'e) t -> 'v list
(** In insertion order. *)

val edges : ('v, 'e) t -> ('v, 'e) edge list
(** In insertion (id) order. *)

val find_edge : ('v, 'e) t -> int -> ('v, 'e) edge
(** @raise Not_found on an unknown id. *)

val nb_vertices : ('v, 'e) t -> int
val nb_edges : ('v, 'e) t -> int

val out_edges : ('v, 'e) t -> 'v -> ('v, 'e) edge list
val in_edges : ('v, 'e) t -> 'v -> ('v, 'e) edge list

val succ : ('v, 'e) t -> 'v -> 'v list
(** Successor vertices, deduplicated. *)

val pred : ('v, 'e) t -> 'v -> 'v list
(** Predecessor vertices, deduplicated. *)

val incident : ('v, 'e) t -> 'v -> ('v, 'e) edge list
(** All edges touching the vertex (out then in, self-loops once). *)

val is_weakly_connected : ('v, 'e) t -> bool
(** True for the empty graph. *)

val sccs : ('v, 'e) t -> 'v list list
(** Strongly connected components (Tarjan), in reverse topological order of
    the condensation. *)

val nontrivial_sccs : ('v, 'e) t -> 'v list list
(** SCCs that contain a cycle: more than one vertex, or one vertex with a
    self-loop. *)

val has_cycle : ('v, 'e) t -> bool

val topological_sort : ('v, 'e) t -> 'v list option
(** [None] when the graph has a cycle. *)

val map_edges : ('v, 'e) t -> ('v -> 'v) -> (('v, 'e) edge -> 'e) -> ('v, 'e) t
(** [map_edges g fv fe] rebuilds the graph applying [fv] to endpoints and
    [fe] to labels; vertices mapping to the same value are merged.  Edges
    whose mapped endpoints coincide are kept as self-loops. *)

val subgraph : ('v, 'e) t -> ('v -> bool) -> ('v, 'e) t
(** Induced subgraph on the vertices satisfying the predicate; edge ids are
    preserved. *)

val pp_dot :
  vertex_name:('v -> string) ->
  ?vertex_attrs:('v -> (string * string) list) ->
  ?edge_attrs:(('v, 'e) edge -> (string * string) list) ->
  ?graph_name:string ->
  Format.formatter ->
  ('v, 'e) t ->
  unit
(** Graphviz export. *)
