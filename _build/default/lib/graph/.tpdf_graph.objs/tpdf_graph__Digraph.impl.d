lib/graph/digraph.ml: Format Hashtbl List Printf Queue String
