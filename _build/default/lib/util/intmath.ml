let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

exception Overflow

let mul_exn a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a then raise Overflow else r

let add_exn a b =
  let r = a + b in
  (* Overflow iff operands share a sign and the result flipped it. *)
  if (a >= 0 && b >= 0 && r < 0) || (a < 0 && b < 0 && r >= 0) then
    raise Overflow
  else r

let lcm a b = if a = 0 || b = 0 then 0 else abs (mul_exn (a / gcd a b) b)

let gcd_list l = List.fold_left gcd 0 l

let lcm_list l = List.fold_left lcm 1 l

let pow b e =
  if e < 0 then invalid_arg "Intmath.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e = 1 then mul_exn acc b
    else if e land 1 = 1 then go (mul_exn acc b) (mul_exn b b) (e asr 1)
    else go acc (mul_exn b b) (e asr 1)
  in
  go 1 b e

let ceil_div a b =
  if b <= 0 then invalid_arg "Intmath.ceil_div: divisor must be positive";
  if a >= 0 then (a + b - 1) / b else -((-a) / b)

let divides a b = a <> 0 && b mod a = 0
