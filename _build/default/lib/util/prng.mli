(** Deterministic pseudo-random number generation.

    All synthetic workloads in this repository (images, OFDM bit streams,
    noise) draw from this generator so that tests and benchmarks are exactly
    reproducible across runs and machines.  The implementation is
    splitmix64, a small, well-distributed, splittable generator. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the rest of [t]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
