(** Exact integer helpers used by the symbolic rate algebra.

    All operations work on OCaml's native 63-bit [int].  Balance-equation
    solving multiplies rates along graph paths; for the graph sizes handled
    here (tens of actors, rates up to a few million) 63 bits are ample, but
    the checked variants below make overflow loud rather than silent. *)

val gcd : int -> int -> int
(** Greatest common divisor; always non-negative; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** Least common multiple; always non-negative. *)

val gcd_list : int list -> int
(** GCD of a list, 0 for the empty list. *)

val lcm_list : int list -> int
(** LCM of a list, 1 for the empty list. *)

exception Overflow
(** Raised by the checked arithmetic below. *)

val mul_exn : int -> int -> int
(** Overflow-checked multiplication.  @raise Overflow on wrap-around. *)

val add_exn : int -> int -> int
(** Overflow-checked addition.  @raise Overflow on wrap-around. *)

val pow : int -> int -> int
(** [pow b e] with [e >= 0], overflow-checked.
    @raise Invalid_argument if [e < 0]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] = ⌈a / b⌉ for [b > 0], exact for negative [a] too. *)

val divides : int -> int -> bool
(** [divides a b] iff [a] divides [b] ([a <> 0]). *)
