type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's native positive int range. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* 53 uniformly random mantissa bits scaled into [0,1). *)
let unit_float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let gaussian t =
  let rec draw () =
    let u = unit_float t in
    if u = 0.0 then draw () else u
  in
  let u1 = draw () and u2 = unit_float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
