lib/util/intmath.mli:
