lib/util/prng.mli:
