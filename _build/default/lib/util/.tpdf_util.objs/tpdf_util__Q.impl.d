lib/util/q.ml: Format Intmath Stdlib
