lib/util/q.mli: Format
