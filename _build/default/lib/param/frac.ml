open Tpdf_util

type t = { num : Poly.t; den : Poly.t }

(* Normalization: cancel what can be cancelled cheaply and exactly.
   1. zero numerator short-circuits;
   2. full exact division one way or the other;
   3. common monomial factor;
   4. scale so the denominator has coprime integer coefficients and a
      positive leading coefficient. *)
let make num den =
  if Poly.is_zero den then raise Division_by_zero;
  if Poly.is_zero num then { num = Poly.zero; den = Poly.one }
  else
    let num, den =
      match Poly.divide num den with
      | Some q -> (q, Poly.one)
      | None -> (
          match Poly.divide den num with
          | Some q ->
              (* num/den = 1/q *)
              (Poly.one, q)
          | None -> (num, den))
    in
    let num, den =
      let mg = Monomial.gcd (Poly.monomial_gcd num) (Poly.monomial_gcd den) in
      if Monomial.is_one mg then (num, den)
      else
        let strip p =
          match Poly.divide p (Poly.monomial Q.one mg) with
          | Some q -> q
          | None -> assert false
        in
        (strip num, strip den)
    in
    let c = Poly.content den in
    let c = if Q.sign (snd (Poly.leading den)) < 0 then Q.neg c else c in
    let inv_c = Q.inv c in
    { num = Poly.scale inv_c num; den = Poly.scale inv_c den }

let of_poly p = make p Poly.one
let of_int n = of_poly (Poly.of_int n)
let of_q q = of_poly (Poly.const q)
let var v = of_poly (Poly.var v)

let zero = of_int 0
let one = of_int 1

let num t = t.num
let den t = t.den

let is_zero t = Poly.is_zero t.num

let to_poly t = if Poly.equal t.den Poly.one then Some t.num else None

let add a b =
  make
    (Poly.add (Poly.mul a.num b.den) (Poly.mul b.num a.den))
    (Poly.mul a.den b.den)

let neg a = { a with num = Poly.neg a.num }

let sub a b = add a (neg b)

let mul a b =
  (* Cross-cancel before multiplying to keep degrees low. *)
  let x = make a.num b.den and y = make b.num a.den in
  make (Poly.mul x.num y.num) (Poly.mul x.den y.den)

let inv a =
  if is_zero a then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)

let equal a b =
  Poly.equal (Poly.mul a.num b.den) (Poly.mul b.num a.den)

let subst x q t = make (Poly.subst x q t.num) (Poly.subst x q t.den)

let eval env t =
  let d = Poly.eval env t.den in
  if Q.is_zero d then raise Division_by_zero;
  Q.div (Poly.eval env t.num) d

let pp ppf t =
  if Poly.equal t.den Poly.one then Poly.pp ppf t.num
  else
    let wrap ppf p =
      if Poly.is_monomial p then Poly.pp ppf p
      else Format.fprintf ppf "(%a)" Poly.pp p
    in
    Format.fprintf ppf "%a/%a" wrap t.num wrap t.den

let to_string t = Format.asprintf "%a" pp t

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
end
