lib/param/frac.ml: Format Monomial Poly Q Tpdf_util
