lib/param/expr.ml: Frac List Poly Printf String
