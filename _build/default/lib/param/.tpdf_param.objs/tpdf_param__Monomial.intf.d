lib/param/monomial.mli: Format
