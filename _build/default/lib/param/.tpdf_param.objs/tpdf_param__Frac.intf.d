lib/param/frac.mli: Format Poly Q Tpdf_util
