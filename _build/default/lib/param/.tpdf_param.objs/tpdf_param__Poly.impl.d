lib/param/poly.ml: Array Format Intmath List Monomial Q Stdlib String Tpdf_util
