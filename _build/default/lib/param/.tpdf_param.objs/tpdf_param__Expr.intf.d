lib/param/expr.mli: Frac Poly
