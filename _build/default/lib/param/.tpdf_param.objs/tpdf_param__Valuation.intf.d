lib/param/valuation.mli: Format
