lib/param/monomial.ml: Format Int List String Tpdf_util
