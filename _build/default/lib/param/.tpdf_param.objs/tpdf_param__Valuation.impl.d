lib/param/valuation.ml: Format List Map Printf String
