lib/param/poly.mli: Format Monomial Q Tpdf_util
