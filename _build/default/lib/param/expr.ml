exception Parse_error of string

type token =
  | Int of int
  | Ident of string
  | Plus
  | Minus
  | Star
  | Slash
  | Caret
  | Lparen
  | Rparen

let fail pos msg =
  raise (Parse_error (Printf.sprintf "at position %d: %s" pos msg))

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '+' -> go (i + 1) ((i, Plus) :: acc)
      | '-' -> go (i + 1) ((i, Minus) :: acc)
      | '*' -> go (i + 1) ((i, Star) :: acc)
      | '/' -> go (i + 1) ((i, Slash) :: acc)
      | '^' -> go (i + 1) ((i, Caret) :: acc)
      | '(' -> go (i + 1) ((i, Lparen) :: acc)
      | ')' -> go (i + 1) ((i, Rparen) :: acc)
      | '0' .. '9' ->
          let j = ref i in
          while !j < n && (match s.[!j] with '0' .. '9' -> true | _ -> false) do
            incr j
          done;
          let v =
            try int_of_string (String.sub s i (!j - i))
            with Failure _ -> fail i "integer literal too large"
          in
          go !j ((i, Int v) :: acc)
      | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
          let j = ref i in
          let ident_char = function
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
            | _ -> false
          in
          while !j < n && ident_char s.[!j] do
            incr j
          done;
          go !j ((i, Ident (String.sub s i (!j - i))) :: acc)
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

(* Recursive-descent parser over the token list. *)
let parse s =
  let tokens = ref (tokenize s) in
  let peek () = match !tokens with [] -> None | (_, t) :: _ -> Some t in
  let advance () =
    match !tokens with [] -> () | _ :: rest -> tokens := rest
  in
  let pos () = match !tokens with [] -> String.length s | (p, _) :: _ -> p in
  let rec expr () =
    let t = ref (term ()) in
    let rec loop () =
      match peek () with
      | Some Plus ->
          advance ();
          t := Frac.add !t (term ());
          loop ()
      | Some Minus ->
          advance ();
          t := Frac.sub !t (term ());
          loop ()
      | _ -> ()
    in
    loop ();
    !t
  and term () =
    let t = ref (factor ()) in
    let rec loop () =
      match peek () with
      | Some Star ->
          advance ();
          t := Frac.mul !t (factor ());
          loop ()
      | Some Slash ->
          advance ();
          let p = pos () in
          let d = factor () in
          if Frac.is_zero d then fail p "division by zero";
          t := Frac.div !t d;
          loop ()
      | _ -> ()
    in
    loop ();
    !t
  and factor () =
    match peek () with
    | Some Minus ->
        advance ();
        Frac.neg (factor ())
    | _ -> (
        let a = atom () in
        match peek () with
        | Some Caret -> (
            advance ();
            match peek () with
            | Some (Int e) -> (
                advance ();
                match Frac.to_poly a with
                | Some p -> Frac.of_poly (Poly.pow p e)
                | None ->
                    Frac.div
                      (Frac.of_poly (Poly.pow (Frac.num a) e))
                      (Frac.of_poly (Poly.pow (Frac.den a) e)))
            | _ -> fail (pos ()) "expected integer exponent after '^'")
        | _ -> a)
  and atom () =
    match peek () with
    | Some (Int v) ->
        advance ();
        Frac.of_int v
    | Some (Ident v) ->
        advance ();
        Frac.var v
    | Some Lparen ->
        advance ();
        let e = expr () in
        (match peek () with
        | Some Rparen -> advance ()
        | _ -> fail (pos ()) "expected ')'");
        e
    | _ -> fail (pos ()) "expected integer, parameter or '('"
  in
  let e = expr () in
  (match !tokens with
  | [] -> ()
  | (p, _) :: _ -> fail p "trailing input");
  e

let parse_poly s =
  match Frac.to_poly (parse s) with
  | Some p -> p
  | None ->
      raise
        (Parse_error
           (Printf.sprintf "%S does not denote a polynomial rate" s))

let poly_of_int = Poly.of_int
