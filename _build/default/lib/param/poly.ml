open Tpdf_util

(* Terms sorted by strictly decreasing monomial order; no zero coefficient. *)
type t = (Monomial.t * Q.t) list

let zero = []

let const c = if Q.is_zero c then [] else [ (Monomial.one, c) ]

let one = const Q.one

let of_int n = const (Q.of_int n)

let monomial c m = if Q.is_zero c then [] else [ (m, c) ]

let var v = monomial Q.one (Monomial.var v)

let is_zero t = t = []

let is_const t =
  match t with [] -> true | [ (m, _) ] -> Monomial.is_one m | _ -> false

let to_const t =
  match t with
  | [] -> Some Q.zero
  | [ (m, c) ] when Monomial.is_one m -> Some c
  | _ -> None

let terms t = t

let leading t =
  match t with
  | [] -> invalid_arg "Poly.leading: zero polynomial"
  | hd :: _ -> hd

let rec add a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ma, ca) :: ra, (mb, cb) :: rb ->
      let cmp = Monomial.compare ma mb in
      if cmp > 0 then (ma, ca) :: add ra b
      else if cmp < 0 then (mb, cb) :: add a rb
      else
        let c = Q.add ca cb in
        if Q.is_zero c then add ra rb else (ma, c) :: add ra rb

let neg t = List.map (fun (m, c) -> (m, Q.neg c)) t

let sub a b = add a (neg b)

let scale k t =
  if Q.is_zero k then [] else List.map (fun (m, c) -> (m, Q.mul k c)) t

let mul_term (m, c) t =
  List.map (fun (m', c') -> (Monomial.mul m m', Q.mul c c')) t

let mul a b = List.fold_left (fun acc term -> add acc (mul_term term b)) zero a

let pow t n =
  if n < 0 then invalid_arg "Poly.pow: negative exponent";
  let rec go acc t n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc t) (mul t t) (n asr 1)
    else go acc (mul t t) (n asr 1)
  in
  go one t n

(* Division by a single divisor with respect to the monomial order: the
   quotient exists exactly when the remainder vanishes. *)
let divide a b =
  if is_zero b then raise Division_by_zero;
  let mb, cb = leading b in
  let rec go quo rem =
    match rem with
    | [] -> Some (List.rev quo)
    | (mr, cr) :: _ ->
        if not (Monomial.divides mb mr) then None
        else
          let qm = Monomial.div mr mb and qc = Q.div cr cb in
          let rem = sub rem (mul_term (qm, qc) b) in
          go ((qm, qc) :: quo) rem
  in
  (* Quotient terms are produced in decreasing order already, but we collect
     then reverse to keep the recursion tail-friendly; re-sort via add to be
     safe about canonical form. *)
  match go [] a with
  | None -> None
  | Some q -> Some (List.fold_left (fun acc term -> add acc [ term ]) zero q)

let equal a b = sub a b = []

let compare a b = Stdlib.compare (a : t) b

let degree t =
  List.fold_left (fun acc (m, _) -> max acc (Monomial.degree m)) (-1) t

let vars t =
  List.sort_uniq String.compare
    (List.concat_map (fun (m, _) -> Monomial.vars m) t)

let content t =
  List.fold_left (fun acc (_, c) -> Q.gcd acc c) Q.zero t

let monomial_gcd t =
  match t with
  | [] -> Monomial.one
  | (m, _) :: rest ->
      List.fold_left (fun acc (m', _) -> Monomial.gcd acc m') m rest

let is_monomial t = match t with [] | [ _ ] -> true | _ -> false

(* --- exact multivariate GCD ----------------------------------------- *)

(* Normalize to coprime integer coefficients with a positive leading one. *)
let normalize_sign_content t =
  match t with
  | [] -> []
  | (_, lead) :: _ ->
      let c =
        List.fold_left (fun acc (_, coeff) -> Q.gcd acc coeff) Q.zero t
      in
      let c = if Q.sign lead < 0 then Q.neg c else c in
      scale (Q.inv c) t

(* View [t] as a univariate polynomial in [x]: an array of coefficient
   polynomials (not containing x), index = power of x. *)
let to_univar t x =
  let deg_x =
    List.fold_left (fun acc (m, _) -> max acc (Monomial.exponent m x)) 0 t
  in
  let coeffs = Array.make (deg_x + 1) zero in
  List.iter
    (fun (m, c) ->
      let e = Monomial.exponent m x in
      let rest =
        Monomial.of_list
          (List.filter (fun (v, _) -> v <> x) (Monomial.to_list m))
      in
      coeffs.(e) <- add coeffs.(e) (monomial c rest))
    t;
  coeffs

let of_univar coeffs x =
  let acc = ref zero in
  Array.iteri
    (fun e coeff ->
      acc :=
        add !acc
          (mul coeff (monomial Q.one (Monomial.pow (Monomial.var x) e))))
    coeffs;
  !acc

let univar_degree coeffs =
  let d = ref (-1) in
  Array.iteri (fun e c -> if not (is_zero c) then d := e) coeffs;
  !d

let rec gcd_exn a b =
  if is_zero a then normalize_sign_content b
  else if is_zero b then normalize_sign_content a
  else
    match (to_const a, to_const b) with
    | Some _, Some _ -> one (* primitive gcd of nonzero constants *)
    | _ ->
        let all_vars = List.sort_uniq String.compare (vars a @ vars b) in
        let x = List.hd all_vars in
        let ua = to_univar a x and ub = to_univar b x in
        let content_of u = Array.fold_left gcd_exn zero u in
        let ca = content_of ua and cb = content_of ub in
        let divide_exn p d =
          match divide p d with Some q -> q | None -> assert false
        in
        let primitive u c = Array.map (fun coeff -> divide_exn coeff c) u in
        let pa = primitive ua ca and pb = primitive ub cb in
        (* primitive pseudo-remainder sequence in x *)
        let rec euclid u v =
          let dv = univar_degree v in
          if dv < 0 then u
          else if dv = 0 then [| one |]
          else begin
            (* pseudo-remainder: lc(v)^(du-dv+1) * u mod v *)
            let du = univar_degree u in
            if du < dv then euclid v u
            else begin
              let r = Array.map (fun c -> c) u in
              let lv = v.(dv) in
              for k = du downto dv do
                let lead = r.(k) in
                if not (is_zero lead) then begin
                  (* r := lv * r - lead * x^(k-dv) * v *)
                  for i = 0 to Array.length r - 1 do
                    r.(i) <- mul lv r.(i)
                  done;
                  for i = 0 to dv do
                    r.(i + k - dv) <- sub r.(i + k - dv) (mul lead v.(i))
                  done
                end
              done;
              for i = dv to Array.length r - 1 do
                r.(i) <- zero
              done;
              (* Primitive PRS: strip the polynomial content, then the
                 numeric content the primitive gcd ignores, keeping the
                 coefficients small between steps. *)
              let rc = Array.fold_left gcd_exn zero r in
              let r =
                if is_zero rc then r else Array.map (fun c -> divide_exn c rc) r
              in
              let rn =
                Array.fold_left (fun acc p -> Q.gcd acc (content p)) Q.zero r
              in
              let r =
                if Q.is_zero rn || Q.equal rn Q.one then r
                else Array.map (fun p -> scale (Q.inv rn) p) r
              in
              euclid v r
            end
          end
        in
        let prim_gcd =
          let g = euclid pa pb in
          let gc = Array.fold_left gcd_exn zero g in
          let g = if is_zero gc then g else Array.map (fun c -> divide_exn c gc) g in
          of_univar g x
        in
        normalize_sign_content (mul (gcd_exn ca cb) prim_gcd)

(* Native-int coefficient growth in the remainder sequence can overflow on
   adversarial inputs; fall back to the always-valid monomial common
   divisor in that case. *)
let gcd a b =
  match gcd_exn a b with
  | g -> g
  | exception Intmath.Overflow ->
      if is_zero a && is_zero b then zero
      else
        let mg =
          if is_zero a then monomial_gcd b
          else if is_zero b then monomial_gcd a
          else Monomial.gcd (monomial_gcd a) (monomial_gcd b)
        in
        monomial Q.one mg


let subst x q t =
  List.fold_left
    (fun acc (m, c) ->
      let e = Monomial.exponent m x in
      if e = 0 then add acc [ (m, c) ]
      else
        let rest =
          Monomial.of_list
            (List.filter (fun (v, _) -> v <> x) (Monomial.to_list m))
        in
        add acc (mul (monomial c rest) (pow q e)))
    zero t

let eval env t =
  List.fold_left
    (fun acc (m, c) ->
      Q.add acc (Q.mul c (Q.of_int (Monomial.eval env m))))
    Q.zero t

let eval_int env t =
  let v = eval env t in
  if not (Q.is_integer v) then
    invalid_arg "Poly.eval_int: fractional value";
  Q.to_int v

let pp ppf t =
  match t with
  | [] -> Format.pp_print_string ppf "0"
  | _ ->
      List.iteri
        (fun i (m, c) ->
          let c =
            if i = 0 then (
              if Q.sign c < 0 then Format.pp_print_string ppf "-";
              Q.abs c)
            else (
              Format.pp_print_string ppf (if Q.sign c < 0 then " - " else " + ");
              Q.abs c)
          in
          if Monomial.is_one m then Format.fprintf ppf "%a" Q.pp c
          else if Q.equal c Q.one then Monomial.pp ppf m
          else Format.fprintf ppf "%a*%a" Q.pp c Monomial.pp m)
        t

let to_string t = Format.asprintf "%a" pp t
