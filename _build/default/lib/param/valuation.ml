module M = Map.Make (String)

type t = int M.t

let empty = M.empty

let add name v t = M.add name v t

let of_list l =
  List.fold_left
    (fun acc (name, v) ->
      if v <= 0 then
        invalid_arg
          (Printf.sprintf "Valuation.of_list: parameter %s must be positive" name);
      if M.mem name acc then
        invalid_arg (Printf.sprintf "Valuation.of_list: duplicate parameter %s" name);
      M.add name v acc)
    M.empty l

let find t name = M.find name t

let find_opt t name = M.find_opt name t

let mem t name = M.mem name t

let bindings t = M.bindings t

let env t name =
  match M.find_opt name t with
  | Some v -> v
  | None ->
      invalid_arg (Printf.sprintf "Valuation: unbound parameter %s" name)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v))
    (bindings t)
