(* Sorted association list from parameter name to exponent; exponents are
   strictly positive, names strictly increasing. *)
type t = (string * int) list

let one = []

let var v = [ (v, 1) ]

let of_list l =
  let l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let rec check = function
    | [] -> ()
    | (_, e) :: _ when e <= 0 ->
        invalid_arg "Monomial.of_list: non-positive exponent"
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg "Monomial.of_list: duplicate parameter"
        else check rest
    | [ _ ] -> ()
  in
  check l;
  l

let to_list t = t

let is_one t = t = []

let degree t = List.fold_left (fun acc (_, e) -> acc + e) 0 t

let exponent t v = match List.assoc_opt v t with Some e -> e | None -> 0

let rec merge f a b =
  match (a, b) with
  | [], rest | rest, [] ->
      List.filter_map (fun (v, e) -> match f e 0 with 0 -> None | e -> Some (v, e)) rest
  | (va, ea) :: ra, (vb, eb) :: rb -> (
      let c = String.compare va vb in
      if c < 0 then
        match f ea 0 with
        | 0 -> merge f ra b
        | e -> (va, e) :: merge f ra b
      else if c > 0 then
        match f eb 0 with
        | 0 -> merge f a rb
        | e -> (vb, e) :: merge f a rb
      else
        match f ea eb with
        | 0 -> merge f ra rb
        | e -> (va, e) :: merge f ra rb)

let mul a b = merge ( + ) a b

let divides a b = List.for_all (fun (v, e) -> exponent b v >= e) a

let div b a =
  if not (divides a b) then invalid_arg "Monomial.div: not divisible";
  merge ( - ) b a

let gcd a b =
  List.filter_map
    (fun (v, e) ->
      let e' = min e (exponent b v) in
      if e' > 0 then Some (v, e') else None)
    a

let lcm a b = merge max a b

let pow t n =
  if n < 0 then invalid_arg "Monomial.pow: negative exponent";
  if n = 0 then one else List.map (fun (v, e) -> (v, e * n)) t

let compare a b =
  let c = Int.compare (degree a) (degree b) in
  if c <> 0 then c
  else
    (* Lexicographic on the sorted variable/exponent sequence: a variable
       earlier in the alphabet with a higher exponent compares greater. *)
    let rec lex a b =
      match (a, b) with
      | [], [] -> 0
      | [], _ -> -1
      | _, [] -> 1
      | (va, ea) :: ra, (vb, eb) :: rb ->
          let c = String.compare vb va in
          if c <> 0 then c
          else
            let c = Int.compare ea eb in
            if c <> 0 then c else lex ra rb
    in
    lex a b

let equal a b = compare a b = 0

let vars t = List.map fst t

let eval env t =
  List.fold_left
    (fun acc (v, e) -> Tpdf_util.Intmath.mul_exn acc (Tpdf_util.Intmath.pow (env v) e))
    1 t

let pp ppf t =
  match t with
  | [] -> Format.pp_print_string ppf "1"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "*")
        (fun ppf (v, e) ->
          if e = 1 then Format.pp_print_string ppf v
          else Format.fprintf ppf "%s^%d" v e)
        ppf t
