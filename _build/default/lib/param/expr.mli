(** Concrete syntax for symbolic rates.

    Rates in graph-builder code and in the CLI are written as strings, e.g.
    ["2"], ["p"], ["2*beta*N"], ["beta*(N+L)"], ["p^2 - 1"].  The grammar is:

    {v
      expr   ::= term (('+' | '-') term)*
      term   ::= factor (('*' | '/') factor)*
      factor ::= '-' factor | atom ('^' nat)?
      atom   ::= nat | ident | '(' expr ')'
    v}

    Identifiers are parameter names ([A-Za-z_] followed by alphanumerics).
    Division must cancel exactly when a polynomial is requested. *)

exception Parse_error of string
(** Carries a human-readable description with position information. *)

val parse : string -> Frac.t
(** Parse into a rational function.  @raise Parse_error on bad syntax. *)

val parse_poly : string -> Poly.t
(** Parse and require a polynomial (denominator 1 after normalization).
    @raise Parse_error on bad syntax or a genuinely fractional result. *)

val poly_of_int : int -> Poly.t
(** Convenience alias for {!Poly.of_int}, for builder code mixing literal
    and symbolic rates. *)
