(** Parameter assignments.

    TPDF parameters are strictly positive integers set at runtime; analyses
    that need concrete numbers (simulation, canonical-period expansion,
    sample-based liveness validation) evaluate symbolic rates under a
    valuation. *)

type t

val empty : t

val of_list : (string * int) list -> t
(** @raise Invalid_argument on duplicate names or non-positive values
    (TPDF parameters range over positive integers). *)

val add : string -> int -> t -> t
(** Replaces any previous binding. *)

val find : t -> string -> int
(** @raise Not_found when the parameter is unbound. *)

val find_opt : t -> string -> int option

val mem : t -> string -> bool

val bindings : t -> (string * int) list

val env : t -> string -> int
(** The lookup function expected by {!Poly.eval} and friends.
    Unbound parameters raise [Not_found] with a helpful message via
    [Invalid_argument]. *)

val pp : Format.formatter -> t -> unit
