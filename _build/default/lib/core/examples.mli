(** The TPDF graphs used as running examples in the paper. *)

type fig2 = {
  graph : Graph.t;
  e : int array;
      (** channel ids of e1…e7 (0-indexed: [e.(0)] is e1, …).  e5 is the
          control channel C → F. *)
}

val fig2 : unit -> fig2
(** Fig. 2: kernels A, B, D, E, F (a Transaction box) and control actor C
    with integer parameter [p].  Repetition vector
    [q = \[2, 2p, p, p, 2p, 2p\]]; [Area(C) = {B, D, E, F}]; F has two
    modes: take two tokens from e6, or one token from e7 (rejecting the
    other input). *)

val fig3 : unit -> Graph.t
(** Fig. 3: B is a Select-duplicate choosing between branches D and E.  To
    keep boundedness checkable the paper pairs it with a (virtual) control
    actor and merge kernel; here the control actor C reads the branch
    decision from A and steers both B (output selection) and the merge
    Transaction F (input selection). *)

val fig4a : unit -> Graph.t
(** Fig. 4(a): A →\[p,p\]→ B with cycle B ⇄ C, two initial tokens — live
    with local schedule (B²C²). *)

val fig4b : unit -> Graph.t
(** Fig. 4(b): same cycle with production \[2,0\] and a single initial
    token — live only through the late schedule (B C C B). *)

val spdf_sample_rate : unit -> Graph.t
(** An SPDF-style two-parameter pipeline (§V claims SPDF/BPDF case studies
    replicate in TPDF without parameter-communication actors): a
    sample-rate converter [src →(p) up →(1,q) down →(1) snk] whose stage
    rates depend on two independent parameters. *)

val unsafe_control : unit -> Graph.t
(** A deliberately rate-unsafe graph: the control actor fires twice per
    local iteration of its area, violating Definition 5. *)
