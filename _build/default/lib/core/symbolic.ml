open Tpdf_param
open Tpdf_util

let poly_gcd polys =
  match List.filter (fun p -> not (Poly.is_zero p)) polys with
  | [] -> Poly.one
  | first :: rest ->
      (* ℤ[params]-style gcd: numeric contents and primitive parts are
         combined separately (gcd(2p, 4p) = 2p, gcd(βN+βL, β) = β). *)
      let content =
        List.fold_left
          (fun acc p -> Q.gcd acc (Poly.content p))
          (Poly.content first) rest
      in
      let primitive =
        List.fold_left Poly.gcd Poly.zero (first :: rest)
      in
      Poly.scale content primitive

let local_scaling (rep : Tpdf_csdf.Repetition.t) members =
  poly_gcd (List.map (fun a -> List.assoc a rep.Tpdf_csdf.Repetition.r) members)

let cumulative_symbolic rates n =
  let tau = Array.length rates in
  if tau = 0 then invalid_arg "Symbolic.cumulative_symbolic: empty sequence";
  let total = Array.fold_left Poly.add Poly.zero rates in
  let as_const =
    match Frac.to_poly n with
    | Some p -> (
        match Poly.to_const p with
        | Some c when Q.is_integer c && Q.to_int c >= 0 -> Some (Q.to_int c)
        | _ -> None)
    | None -> None
  in
  (* A firing count must be integer-valued: polynomial with integer
     coefficients (sufficient criterion). *)
  let integer_poly f =
    match Frac.to_poly f with
    | Some p when
        List.for_all (fun (_, c) -> Q.is_integer c) (Poly.terms p) ->
        Some p
    | _ -> None
  in
  match as_const with
  | Some k ->
      (* Concrete firing count: exact cyclic prefix sum. *)
      let acc = ref Poly.zero in
      for l = 0 to k - 1 do
        acc := Poly.add !acc rates.(l mod tau)
      done;
      Some (Frac.of_poly !acc)
  | None -> (
      (* n an integer-polynomial multiple of tau: (n/tau) full cycles. *)
      let cycles = Frac.div n (Frac.of_int tau) in
      match integer_poly cycles with
      | Some _ -> Some (Frac.mul cycles (Frac.of_poly total))
      | None ->
          (* Uniform rates: n * rate regardless of phase alignment. *)
          let uniform =
            Array.for_all (fun r -> Poly.equal r rates.(0)) rates
          in
          if uniform then Some (Frac.mul n (Frac.of_poly rates.(0))) else None)
