(** Textual serialization of TPDF graphs.

    A small, line-oriented concrete syntax so graphs can live in files and
    be fed to the CLI.  Example:

    {v
    # The running example of Fig. 2.
    tpdf fig2 {
      kernel A;
      kernel B;
      control C;
      kernel D;
      kernel E;
      kernel F phases=2 kind=transaction;
      channel e1 = A [p] -> [1] B;
      channel e2 = B [1] -> [2] C;
      channel e3 = B [1] -> [2] D;
      channel e4 = B [1] -> [1] E;
      ctrl    e5 = C [2] -> [1,1] F;
      channel e6 = D [2] -> [1,1] F priority=1;
      channel e7 = E [1] -> [0,2] F priority=2;
      modes F { take_e6 inputs(e6); take_e7 inputs(e7); }
    }
    v}

    Grammar notes:
    - rates are bracketed, comma-separated rate expressions (the syntax of
      {!Tpdf_param.Expr}); one entry per phase;
    - [channel NAME = SRC [prod] -> [cons] DST] with optional [init=N] and
      [priority=N] attributes; [ctrl] introduces a control channel;
    - [control NAME clock=MS] declares a clock actor;
    - kernel kinds: [plain] (default), [select_duplicate], [transaction];
    - mode input/output subsets name channels; [inputs( * )] (an asterisk) means all inputs,
      [inputs(priority)] is the highest-priority-available policy;
    - [#] starts a comment. *)

val to_string : Graph.t -> string
(** Canonical rendering (channels named [e<id>]). *)

val of_string : string -> (Graph.t, string) result
(** Parse; the error carries a line number and description. *)

val save : string -> Graph.t -> unit
(** Write to a file.  @raise Sys_error. *)

val load : string -> (Graph.t, string) result
(** Read from a file; I/O errors are reported in the [Error] case. *)
