(** Shared symbolic helpers for the TPDF analyses. *)

open Tpdf_param

val poly_gcd : Poly.t list -> Poly.t
(** The exact ℤ\[params\]-style GCD of the given polynomials: the
    rational GCD of their numeric contents times the primitive multivariate
    GCD ({!Tpdf_param.Poly.gcd}) of the polynomials, so e.g.
    [gcd \[2p; 4p\] = 2p] and [gcd \[βN + βL; βN\] = β].
    Returns 1 for the empty list. *)

val local_scaling :
  Tpdf_csdf.Repetition.t -> string list -> Poly.t
(** q{_G}(Z) of Definition 4: gcd over the subset of q{_a}/τ{_a}, i.e. of
    the cycle counts r{_a}.  @raise Not_found on unknown actors. *)

val cumulative_symbolic : Poly.t array -> Frac.t -> Frac.t option
(** [cumulative_symbolic rates n]: tokens moved by the first [n] firings of
    a cyclic rate sequence, when expressible in closed form: [n] constant,
    [n] a polynomial multiple of the sequence length, or a uniform rate
    sequence.  [None] otherwise. *)
