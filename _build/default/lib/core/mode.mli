(** Kernel modes (§II-B of the paper).

    A control token received on a kernel's control port selects the mode in
    which the kernel fires.  The paper lists four families of behaviours,
    all expressible here:

    - {e select one of the data inputs (outputs)} — [Input_subset] /
      [Output_subset] with a single channel;
    - {e select more than one data input (output)} — subsets;
    - {e select available data input with the highest priority} —
      [Highest_priority_available] (resolved at run time against the port
      priorities α);
    - {e wait until all data inputs are available} — [All_inputs].

    Channels not selected by the active mode are {e rejected}: their tokens
    are discarded rather than consumed as data, which is what lets TPDF
    drop whole branches of the topology within an iteration. *)

type input_policy =
  | All_inputs  (** dataflow behaviour: wait for every input channel *)
  | Input_subset of int list
      (** wait for (and read) exactly these channel ids; reject the rest *)
  | Highest_priority_available
      (** at firing time take the available input channel of highest
          priority; reject the rest (the Transaction box's deadline mode) *)

type output_policy =
  | All_outputs
  | Output_subset of int list  (** produce only on these channel ids *)

type t = private {
  name : string;
  inputs : input_policy;
  outputs : output_policy;
}

val make : ?inputs:input_policy -> ?outputs:output_policy -> string -> t
(** Defaults: [All_inputs], [All_outputs]. *)

val default : t
(** The implicit mode of kernels without a control port: plain dataflow. *)

val input_may_be_active : t -> int -> bool
(** Static over-approximation: can this input channel carry live data in
    this mode?  [Highest_priority_available] answers [true] for every
    channel (the choice is dynamic). *)

val output_may_be_active : t -> int -> bool

val input_statically_active : t -> int -> bool
(** Static under/exact approximation used by the scenario-based buffer
    analysis: for [Highest_priority_available] this also answers [true];
    pin the choice with an explicit [Input_subset] scenario mode instead. *)

val pp : Format.formatter -> t -> unit
