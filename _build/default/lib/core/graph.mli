(** Transaction Parameterized Dataflow graphs (Definition 2 of the paper).

    A TPDF graph is the tuple (K, G, E, P, R{_k}, R{_g}, α, φ{^*}):
    kernels [K], control actors [G], channels [E] (data and control),
    integer parameters [P] (implicit in the symbolic rates), per-port rates
    [R], port priorities [α] and initial channel states [φ{^*}].

    Structurally it embeds a CSDF {e skeleton} — every actor with its
    cyclic, possibly parametric, rate sequences and every channel with its
    initial tokens — plus the TPDF-specific metadata: which actors are
    control actors (optionally time-triggered {e clocks}), which channels
    are control channels, channel priorities, and the mode table of each
    kernel.  The consistency analysis of §III-A runs on the skeleton with
    all channels present; boundedness and liveness use the metadata. *)

open Tpdf_param

type kernel_kind =
  | Plain_kernel
  | Select_duplicate
      (** one input, n outputs; each input token is copied onto the subset
          of outputs enabled by the current mode (§II-B.a) *)
  | Transaction
      (** n inputs, one output; atomically selects a predefined number of
          tokens from one or several inputs — supports speculation,
          redundancy with vote, highest-priority-at-deadline (§II-B.b) *)

type actor_kind =
  | Kernel of kernel_kind
  | Control of { clock_period_ms : float option }
      (** [Some t]: a {e clock} control actor emitting a control token
          every [t] milliseconds (§II-B.c); [None]: data-driven control *)

type t

val create : unit -> t

val of_csdf : Tpdf_csdf.Graph.t -> t
(** Embed a plain CSDF graph: every actor becomes a plain kernel, every
    channel a data channel.  (CSDF is the degenerate TPDF without control
    actors, so all analyses apply unchanged.) *)

val add_kernel : t -> ?phases:int -> ?kind:kernel_kind -> string -> unit
(** Default one phase, [Plain_kernel].  @raise Invalid_argument on
    duplicates or [phases < 1]. *)

val add_control : t -> ?phases:int -> ?clock_period_ms:float -> string -> unit
(** A control actor; with [clock_period_ms] it is a watchdog clock. *)

val add_channel :
  t ->
  src:string ->
  dst:string ->
  prod:Poly.t array ->
  cons:Poly.t array ->
  ?init:int ->
  ?priority:int ->
  unit ->
  int
(** Data channel; [priority] is the α of the consumer port (higher wins,
    default 0).  Same validation as {!Tpdf_csdf.Graph.add_channel}. *)

val add_control_channel :
  t ->
  src:string ->
  dst:string ->
  prod:Poly.t array ->
  cons:Poly.t array ->
  ?init:int ->
  unit ->
  int
(** Control channel.  [src] must be a control actor, and every consumption
    rate must be the constant 0 or 1 (the paper requires
    [R{_k}(m, c, n) ∈ {0,1}]).  A kernel may have at most one control
    channel in (its unique control port).  @raise Invalid_argument. *)

val set_modes : t -> string -> Mode.t list -> unit
(** Declare the mode set M{_k} of a kernel.  Channel ids referenced by the
    modes must be adjacent to the kernel.  @raise Invalid_argument on
    control actors, unknown channels, or duplicate mode names. *)

val skeleton : t -> Tpdf_csdf.Graph.t
(** The underlying CSDF skeleton (all channels present). *)

val actors : t -> string list
val kernels : t -> string list
val control_actors : t -> string list

val kind : t -> string -> actor_kind
(** @raise Not_found. *)

val is_control : t -> string -> bool
val clock_period_ms : t -> string -> float option

val modes : t -> string -> Mode.t list
(** The declared mode set; [\[Mode.default\]] for kernels without one. *)

val find_mode : t -> string -> string -> Mode.t
(** [find_mode g kernel name].  @raise Not_found. *)

val control_channel_ids : t -> int list
val data_channel_ids : t -> int list
val is_control_channel : t -> int -> bool

val control_port : t -> string -> int option
(** The id of the kernel's unique incoming control channel, if any. *)

val priority : t -> int -> int
(** α of the consumer port of a channel (0 when unset). *)

val parameters : t -> string list

val validate : t -> (unit, string list) result
(** Structural well-formedness: control channels originate from control
    actors (enforced at construction), at most one control port per kernel
    (enforced), mode subsets reference adjacent channels (enforced), and —
    checked here — every kernel with declared modes has a control port,
    and clock actors have no data inputs. *)

val pp : Format.formatter -> t -> unit
val pp_dot : Format.formatter -> t -> unit
(** Control actors are drawn as ellipses, control channels dashed. *)
