module Csdf = Tpdf_csdf

let r = Csdf.Graph.rates
let c = Csdf.Graph.const_rates

type fig2 = { graph : Graph.t; e : int array }

let fig2 () =
  let g = Graph.create () in
  Graph.add_kernel g "A";
  Graph.add_kernel g "B";
  Graph.add_control g "C";
  Graph.add_kernel g "D";
  Graph.add_kernel g "E";
  Graph.add_kernel g ~phases:2 ~kind:Graph.Transaction "F";
  let e1 = Graph.add_channel g ~src:"A" ~dst:"B" ~prod:(r [ "p" ]) ~cons:(c [ 1 ]) () in
  let e2 = Graph.add_channel g ~src:"B" ~dst:"C" ~prod:(c [ 1 ]) ~cons:(c [ 2 ]) () in
  let e3 = Graph.add_channel g ~src:"B" ~dst:"D" ~prod:(c [ 1 ]) ~cons:(c [ 2 ]) () in
  let e4 = Graph.add_channel g ~src:"B" ~dst:"E" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) () in
  let e5 =
    Graph.add_control_channel g ~src:"C" ~dst:"F" ~prod:(c [ 2 ]) ~cons:(c [ 1; 1 ]) ()
  in
  let e6 =
    Graph.add_channel g ~src:"D" ~dst:"F" ~prod:(c [ 2 ]) ~cons:(c [ 1; 1 ])
      ~priority:1 ()
  in
  let e7 =
    Graph.add_channel g ~src:"E" ~dst:"F" ~prod:(c [ 1 ]) ~cons:(c [ 0; 2 ])
      ~priority:2 ()
  in
  Graph.set_modes g "F"
    [
      Mode.make ~inputs:(Mode.Input_subset [ e6 ]) "take_e6";
      Mode.make ~inputs:(Mode.Input_subset [ e7 ]) "take_e7";
    ];
  { graph = g; e = [| e1; e2; e3; e4; e5; e6; e7 |] }

let fig3 () =
  let g = Graph.create () in
  Graph.add_kernel g "A";
  Graph.add_kernel g ~kind:Graph.Select_duplicate "B";
  Graph.add_control g "C";
  Graph.add_kernel g "D";
  Graph.add_kernel g "E";
  Graph.add_kernel g ~kind:Graph.Transaction "F";
  let one = c [ 1 ] in
  let _ab = Graph.add_channel g ~src:"A" ~dst:"B" ~prod:one ~cons:one () in
  (* The data-dependent branch decision reaches the control actor C, which
     steers both ends of the reconfigured region: the Select-duplicate B
     (which data path receives the token) and the virtual merge F (which
     data path to read) — keeping boundedness checkable, the point of
     Fig. 3. *)
  let _ac = Graph.add_channel g ~src:"A" ~dst:"C" ~prod:one ~cons:one () in
  let bd = Graph.add_channel g ~src:"B" ~dst:"D" ~prod:one ~cons:one () in
  let be = Graph.add_channel g ~src:"B" ~dst:"E" ~prod:one ~cons:one () in
  let df = Graph.add_channel g ~src:"D" ~dst:"F" ~prod:one ~cons:one () in
  let ef = Graph.add_channel g ~src:"E" ~dst:"F" ~prod:one ~cons:one () in
  let _cb =
    Graph.add_control_channel g ~src:"C" ~dst:"B" ~prod:one ~cons:one ()
  in
  let _cf =
    Graph.add_control_channel g ~src:"C" ~dst:"F" ~prod:one ~cons:one ()
  in
  Graph.set_modes g "B"
    [
      Mode.make ~outputs:(Mode.Output_subset [ bd ]) "to_d";
      Mode.make ~outputs:(Mode.Output_subset [ be ]) "to_e";
    ];
  Graph.set_modes g "F"
    [
      Mode.make ~inputs:(Mode.Input_subset [ df ]) "from_d";
      Mode.make ~inputs:(Mode.Input_subset [ ef ]) "from_e";
    ];
  g

let cycle_graph ~bc_prod ~cb_init =
  let g = Graph.create () in
  Graph.add_kernel g ~phases:2 "A";
  Graph.add_kernel g ~phases:2 "B";
  Graph.add_kernel g "C";
  ignore
    (Graph.add_channel g ~src:"A" ~dst:"B" ~prod:(r [ "p"; "p" ])
       ~cons:(c [ 1; 1 ]) ());
  ignore
    (Graph.add_channel g ~src:"B" ~dst:"C" ~prod:(c bc_prod) ~cons:(c [ 1 ]) ());
  ignore
    (Graph.add_channel g ~src:"C" ~dst:"B" ~prod:(c [ 1 ]) ~cons:(c [ 1; 1 ])
       ~init:cb_init ());
  g

let fig4a () = cycle_graph ~bc_prod:[ 0; 2 ] ~cb_init:2

let fig4b () = cycle_graph ~bc_prod:[ 2; 0 ] ~cb_init:1

let spdf_sample_rate () =
  let g = Graph.create () in
  Graph.add_kernel g "src";
  Graph.add_kernel g "up";
  Graph.add_kernel g "down";
  Graph.add_kernel g "snk";
  ignore
    (Graph.add_channel g ~src:"src" ~dst:"up" ~prod:(r [ "1" ]) ~cons:(r [ "1" ]) ());
  ignore
    (Graph.add_channel g ~src:"up" ~dst:"down" ~prod:(r [ "p" ]) ~cons:(r [ "q" ]) ());
  ignore
    (Graph.add_channel g ~src:"down" ~dst:"snk" ~prod:(r [ "1" ]) ~cons:(r [ "1" ]) ());
  g

let unsafe_control () =
  let g = Graph.create () in
  Graph.add_kernel g "A";
  Graph.add_control g ~phases:2 "C";
  Graph.add_kernel g "F";
  ignore
    (Graph.add_channel g ~src:"A" ~dst:"C" ~prod:(c [ 2 ]) ~cons:(c [ 1; 1 ]) ());
  ignore
    (Graph.add_control_channel g ~src:"C" ~dst:"F" ~prod:(c [ 1; 1 ])
       ~cons:(c [ 1 ]) ());
  ignore
    (Graph.add_channel g ~src:"A" ~dst:"F" ~prod:(c [ 2 ]) ~cons:(c [ 1 ]) ());
  g
