type input_policy =
  | All_inputs
  | Input_subset of int list
  | Highest_priority_available

type output_policy = All_outputs | Output_subset of int list

type t = { name : string; inputs : input_policy; outputs : output_policy }

let make ?(inputs = All_inputs) ?(outputs = All_outputs) name =
  { name; inputs; outputs }

let default = make "default"

let input_may_be_active t id =
  match t.inputs with
  | All_inputs | Highest_priority_available -> true
  | Input_subset l -> List.mem id l

let output_may_be_active t id =
  match t.outputs with
  | All_outputs -> true
  | Output_subset l -> List.mem id l

let input_statically_active = input_may_be_active

let pp ppf t =
  let pp_ids ppf l =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      (fun ppf id -> Format.fprintf ppf "e%d" id)
      ppf l
  in
  Format.fprintf ppf "%s(in=%a, out=%a)" t.name
    (fun ppf -> function
      | All_inputs -> Format.pp_print_string ppf "all"
      | Highest_priority_available -> Format.pp_print_string ppf "highest-priority"
      | Input_subset l -> pp_ids ppf l)
    t.inputs
    (fun ppf -> function
      | All_outputs -> Format.pp_print_string ppf "all"
      | Output_subset l -> pp_ids ppf l)
    t.outputs
