open Tpdf_param
module Csdf = Tpdf_csdf
module Digraph = Tpdf_graph.Digraph

type kernel_kind = Plain_kernel | Select_duplicate | Transaction

type actor_kind =
  | Kernel of kernel_kind
  | Control of { clock_period_ms : float option }

type t = {
  skel : Csdf.Graph.t;
  kinds : (string, actor_kind) Hashtbl.t;
  ctrl_channels : (int, unit) Hashtbl.t;
  ctrl_port : (string, int) Hashtbl.t; (* kernel -> its control channel *)
  priorities : (int, int) Hashtbl.t;
  mode_tbl : (string, Mode.t list) Hashtbl.t;
}

let create () =
  {
    skel = Csdf.Graph.create ();
    kinds = Hashtbl.create 16;
    ctrl_channels = Hashtbl.create 16;
    ctrl_port = Hashtbl.create 16;
    priorities = Hashtbl.create 16;
    mode_tbl = Hashtbl.create 16;
  }

let of_csdf csdf =
  let t = create () in
  List.iter
    (fun a ->
      Csdf.Graph.add_actor t.skel a ~phases:(Csdf.Graph.phases csdf a);
      Hashtbl.replace t.kinds a (Kernel Plain_kernel))
    (Csdf.Graph.actors csdf);
  List.iter
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      ignore
        (Csdf.Graph.add_channel t.skel ~src:e.src ~dst:e.dst ~prod:e.label.prod
           ~cons:e.label.cons ~init:e.label.init ()))
    (Csdf.Graph.channels csdf);
  t

let add_kernel t ?(phases = 1) ?(kind = Plain_kernel) name =
  Csdf.Graph.add_actor t.skel name ~phases;
  Hashtbl.replace t.kinds name (Kernel kind)

let add_control t ?(phases = 1) ?clock_period_ms name =
  (match clock_period_ms with
  | Some p when p <= 0.0 ->
      invalid_arg "Tpdf.add_control: clock period must be positive"
  | _ -> ());
  Csdf.Graph.add_actor t.skel name ~phases;
  Hashtbl.replace t.kinds name (Control { clock_period_ms })

let kind t name =
  match Hashtbl.find_opt t.kinds name with
  | Some k -> k
  | None -> raise Not_found

let is_control t name =
  match Hashtbl.find_opt t.kinds name with
  | Some (Control _) -> true
  | _ -> false

let clock_period_ms t name =
  match Hashtbl.find_opt t.kinds name with
  | Some (Control { clock_period_ms }) -> clock_period_ms
  | _ -> None

let add_channel t ~src ~dst ~prod ~cons ?init ?(priority = 0) () =
  let id = Csdf.Graph.add_channel t.skel ~src ~dst ~prod ~cons ?init () in
  if priority <> 0 then Hashtbl.replace t.priorities id priority;
  id

let is_const_01 p =
  match Poly.to_const p with
  | Some c -> Tpdf_util.Q.equal c Tpdf_util.Q.zero || Tpdf_util.Q.equal c Tpdf_util.Q.one
  | None -> false

let add_control_channel t ~src ~dst ~prod ~cons ?init () =
  if not (is_control t src) then
    invalid_arg
      (Printf.sprintf
         "Tpdf.add_control_channel: %s is not a control actor (control \
          channels can start only from a control actor)"
         src);
  if not (Array.for_all is_const_01 cons) then
    invalid_arg
      "Tpdf.add_control_channel: control-port consumption rates must be 0 \
       or 1";
  if (not (is_control t dst)) && Hashtbl.mem t.ctrl_port dst then
    invalid_arg
      (Printf.sprintf
         "Tpdf.add_control_channel: kernel %s already has a control port" dst);
  let id = Csdf.Graph.add_channel t.skel ~src ~dst ~prod ~cons ?init () in
  Hashtbl.replace t.ctrl_channels id ();
  if not (is_control t dst) then Hashtbl.replace t.ctrl_port dst id;
  id

let skeleton t = t.skel

let actors t = Csdf.Graph.actors t.skel

let kernels t =
  List.filter (fun a -> not (is_control t a)) (actors t)

let control_actors t = List.filter (is_control t) (actors t)

let adjacent_channel_ids t name =
  List.map
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) -> e.id)
    (Csdf.Graph.in_channels t.skel name @ Csdf.Graph.out_channels t.skel name)

let set_modes t name modes =
  if is_control t name then
    invalid_arg
      (Printf.sprintf "Tpdf.set_modes: %s is a control actor, not a kernel"
         name);
  if not (Csdf.Graph.mem_actor t.skel name) then
    invalid_arg (Printf.sprintf "Tpdf.set_modes: unknown kernel %s" name);
  let names = List.map (fun (m : Mode.t) -> m.Mode.name) modes in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Tpdf.set_modes: duplicate mode names";
  let adjacent = adjacent_channel_ids t name in
  let check_ids l =
    List.iter
      (fun id ->
        if not (List.mem id adjacent) then
          invalid_arg
            (Printf.sprintf
               "Tpdf.set_modes: channel e%d is not adjacent to kernel %s" id
               name))
      l
  in
  List.iter
    (fun (m : Mode.t) ->
      (match m.Mode.inputs with
      | Mode.Input_subset l -> check_ids l
      | Mode.All_inputs | Mode.Highest_priority_available -> ());
      match m.Mode.outputs with
      | Mode.Output_subset l -> check_ids l
      | Mode.All_outputs -> ())
    modes;
  Hashtbl.replace t.mode_tbl name modes

let modes t name =
  match Hashtbl.find_opt t.mode_tbl name with
  | Some l -> l
  | None -> [ Mode.default ]

let find_mode t kernel name =
  List.find (fun (m : Mode.t) -> m.Mode.name = name) (modes t kernel)

let control_channel_ids t =
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) t.ctrl_channels [])

let is_control_channel t id = Hashtbl.mem t.ctrl_channels id

let data_channel_ids t =
  List.filter_map
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      if is_control_channel t e.id then None else Some e.id)
    (Csdf.Graph.channels t.skel)

let control_port t name = Hashtbl.find_opt t.ctrl_port name

let priority t id =
  match Hashtbl.find_opt t.priorities id with Some p -> p | None -> 0

let parameters t = Csdf.Graph.parameters t.skel

let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* Kernels with declared modes need a control port to select them. *)
  Hashtbl.iter
    (fun kernel ms ->
      if List.length ms > 1 && control_port t kernel = None then
        err "kernel %s declares %d modes but has no control port" kernel
          (List.length ms))
    t.mode_tbl;
  (* Clock actors are time-triggered: they must not wait for data. *)
  List.iter
    (fun a ->
      match clock_period_ms t a with
      | Some _ when Csdf.Graph.in_channels t.skel a <> [] ->
          err "clock actor %s must not have input channels" a
      | _ -> ())
    (control_actors t);
  match !errors with [] -> Ok () | l -> Error (List.rev l)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun a ->
      let k =
        match kind t a with
        | Kernel Plain_kernel -> "kernel"
        | Kernel Select_duplicate -> "select-duplicate"
        | Kernel Transaction -> "transaction"
        | Control { clock_period_ms = Some p } ->
            Printf.sprintf "clock(%gms)" p
        | Control { clock_period_ms = None } -> "control"
      in
      Format.fprintf ppf "%s %s (tau=%d)@," k a (Csdf.Graph.phases t.skel a))
    (actors t);
  List.iter
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      Format.fprintf ppf "%s e%d: %s -> %s (init=%d, alpha=%d)@,"
        (if is_control_channel t e.id then "ctrl" else "data")
        e.id e.src e.dst e.label.init (priority t e.id))
    (Csdf.Graph.channels t.skel);
  Format.fprintf ppf "@]"

let pp_dot ppf t =
  Digraph.pp_dot
    ~vertex_name:(fun v -> v)
    ~vertex_attrs:(fun v ->
      match kind t v with
      | Kernel Plain_kernel -> [ ("shape", "box") ]
      | Kernel Select_duplicate -> [ ("shape", "box"); ("style", "rounded") ]
      | Kernel Transaction -> [ ("shape", "box3d") ]
      | Control _ -> [ ("shape", "ellipse") ])
    ~edge_attrs:(fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      let style =
        if is_control_channel t e.id then [ ("style", "dashed") ] else []
      in
      ("label", Printf.sprintf "e%d" e.id) :: style)
    ~graph_name:"tpdf" ppf (Csdf.Graph.digraph t.skel)
