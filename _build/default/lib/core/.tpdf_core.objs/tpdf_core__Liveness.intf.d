lib/core/liveness.mli: Format Graph Tpdf_csdf Tpdf_param Valuation
