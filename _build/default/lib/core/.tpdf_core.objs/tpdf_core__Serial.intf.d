lib/core/serial.mli: Graph
