lib/core/buffers.mli: Graph Tpdf_csdf Tpdf_param Valuation
