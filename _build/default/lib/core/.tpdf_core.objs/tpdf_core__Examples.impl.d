lib/core/examples.ml: Graph Mode Tpdf_csdf
