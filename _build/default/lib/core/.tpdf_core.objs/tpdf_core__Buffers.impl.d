lib/core/buffers.ml: Graph Hashtbl List Mode Printf String Tpdf_csdf Tpdf_graph
