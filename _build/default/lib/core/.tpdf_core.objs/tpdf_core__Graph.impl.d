lib/core/graph.ml: Array Format Hashtbl List Mode Poly Printf String Tpdf_csdf Tpdf_graph Tpdf_param Tpdf_util
