lib/core/analysis.mli: Format Frac Graph Poly Tpdf_csdf Tpdf_param Valuation
