lib/core/liveness.ml: Format Frac Graph Intmath List Printf String Symbolic Tpdf_csdf Tpdf_graph Tpdf_param Tpdf_util Valuation
