lib/core/analysis.ml: Array Format Frac Graph List Liveness Printf String Symbolic Tpdf_csdf Tpdf_graph Tpdf_param Valuation
