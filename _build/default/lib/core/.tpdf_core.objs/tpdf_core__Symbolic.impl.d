lib/core/symbolic.ml: Array Frac List Poly Q Tpdf_csdf Tpdf_param Tpdf_util
