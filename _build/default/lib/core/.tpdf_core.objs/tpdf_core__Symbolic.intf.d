lib/core/symbolic.mli: Frac Poly Tpdf_csdf Tpdf_param
