lib/core/serial.ml: Array Buffer Expr Format Fun Graph Hashtbl In_channel List Mode Poly Printf String Tpdf_csdf Tpdf_graph Tpdf_param
