lib/core/examples.mli: Graph
