lib/core/graph.mli: Format Mode Poly Tpdf_csdf Tpdf_param
