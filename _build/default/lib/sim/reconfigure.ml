type iteration_stats = {
  valuation : Tpdf_param.Valuation.t;
  stats : Engine.stats;
}

type report = {
  iterations : iteration_stats list;
  total_end_ms : float;
  max_occupancy : (int * int) list;
}

let run_sequence ~graph ?(behaviors = []) ?targets ~default valuations =
  if valuations = [] then
    invalid_arg "Reconfigure.run_sequence: empty valuation sequence";
  let iterations =
    List.map
      (fun valuation ->
        let eng = Engine.create ~graph ~valuation ~behaviors ~default () in
        let targets =
          match targets with None -> None | Some f -> Some (f valuation)
        in
        { valuation; stats = Engine.run ?targets eng })
      valuations
  in
  let max_occupancy =
    match iterations with
    | [] -> []
    | first :: rest ->
        List.fold_left
          (fun acc it ->
            List.map
              (fun (ch, occ) ->
                match List.assoc_opt ch it.stats.Engine.max_occupancy with
                | Some occ' -> (ch, max occ occ')
                | None -> (ch, occ))
              acc)
          first.stats.Engine.max_occupancy rest
  in
  {
    iterations;
    total_end_ms =
      List.fold_left (fun acc it -> acc +. it.stats.Engine.end_ms) 0.0 iterations;
    max_occupancy;
  }
