(** Rendering and exporting execution traces of the runtime engine. *)

val gantt : ?width:int -> Engine.stats -> string
(** ASCII Gantt chart of the firing records, one row per actor (actors in
    first-firing order); instantaneous firings (clock ticks) are marked
    with ['|'].  [width] is the time-axis width (default 72). *)

val to_csv : Engine.stats -> string
(** One line per firing: [actor,index,phase,mode,start_ms,finish_ms],
    with a header row. *)
