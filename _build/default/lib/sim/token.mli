(** Tokens carried by channels at run time.

    Data channels carry application payloads of type ['a]; control channels
    carry mode names (the control tokens of §II-B that select the mode in
    which the receiving kernel fires). *)

type 'a t = Data of 'a | Ctrl of string

val data : 'a t -> 'a
(** @raise Invalid_argument on a control token. *)

val ctrl : 'a t -> string
(** @raise Invalid_argument on a data token. *)

val is_ctrl : 'a t -> bool

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
