(** Iteration-boundary reconfiguration.

    TPDF parameters are set at run time: in the OFDM demodulator the
    vectorization degree β “varies between 1 and 100” across activations.
    Rate consistency guarantees that a (consistent, safe, live) graph
    returns to its initial channel state after every iteration — which is
    exactly the moment a parameter may change without breaking any firing
    in flight.  This module runs a sequence of iterations, each under its
    own valuation, checking the boundary invariant between them. *)

type iteration_stats = {
  valuation : Tpdf_param.Valuation.t;
  stats : Engine.stats;
}

type report = {
  iterations : iteration_stats list;
  total_end_ms : float;  (** sum of per-iteration end times *)
  max_occupancy : (int * int) list;  (** per channel, across iterations *)
}

val run_sequence :
  graph:Tpdf_core.Graph.t ->
  ?behaviors:(string * 'a Behavior.t) list ->
  ?targets:(Tpdf_param.Valuation.t -> (string * int) list) ->
  default:'a ->
  Tpdf_param.Valuation.t list ->
  report
(** Execute one iteration per valuation.  Each iteration starts from the
    graph's initial channel state (the boundary invariant the analyses
    guarantee); behaviours are re-instantiated per iteration with the
    current valuation's rates.  [targets] can deselect branch actors per
    valuation (see {!Engine.run}).
    @raise Invalid_argument on an empty sequence
    @raise Failure if any iteration stalls. *)
