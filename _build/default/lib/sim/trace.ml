let actors_in_order (stats : Engine.stats) =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (r : Engine.firing_record) ->
      if Hashtbl.mem seen r.Engine.actor then None
      else begin
        Hashtbl.replace seen r.Engine.actor ();
        Some r.Engine.actor
      end)
    stats.Engine.trace

let gantt ?(width = 72) (stats : Engine.stats) =
  let buf = Buffer.create 256 in
  let span = Float.max stats.Engine.end_ms 1e-9 in
  let col t =
    min (width - 1) (int_of_float (float_of_int (width - 1) *. t /. span))
  in
  List.iter
    (fun actor ->
      let row = Bytes.make width '.' in
      List.iter
        (fun (r : Engine.firing_record) ->
          if r.Engine.actor = actor then
            if r.Engine.finish_ms <= r.Engine.start_ms then
              Bytes.set row (col r.Engine.start_ms) '|'
            else
              for i = col r.Engine.start_ms to max (col r.Engine.start_ms)
                                                  (col r.Engine.finish_ms - 1) do
                Bytes.set row i '#'
              done)
        stats.Engine.trace;
      Buffer.add_string buf (Printf.sprintf "%-12s |%s|\n" actor (Bytes.to_string row)))
    (actors_in_order stats);
  Buffer.add_string buf (Printf.sprintf "%-12s  0 ms %*s %.3f ms\n" "" (width - 12) "" stats.Engine.end_ms);
  Buffer.contents buf

let to_csv (stats : Engine.stats) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "actor,index,phase,mode,start_ms,finish_ms\n";
  List.iter
    (fun (r : Engine.firing_record) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%s,%.6f,%.6f\n" r.Engine.actor r.Engine.index
           r.Engine.phase r.Engine.mode r.Engine.start_ms r.Engine.finish_ms))
    stats.Engine.trace;
  Buffer.contents buf
