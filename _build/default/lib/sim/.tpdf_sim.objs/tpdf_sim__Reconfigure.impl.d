lib/sim/reconfigure.ml: Engine List Tpdf_param
