lib/sim/token.mli: Format
