lib/sim/patterns.ml: Behavior List Printf Token
