lib/sim/patterns.mli: Behavior
