lib/sim/reconfigure.mli: Behavior Engine Tpdf_core Tpdf_param
