lib/sim/token.ml: Format
