lib/sim/behavior.mli: Token
