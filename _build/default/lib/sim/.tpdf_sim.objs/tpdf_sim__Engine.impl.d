lib/sim/engine.ml: Array Behavior Hashtbl List Printf Queue String Token Tpdf_core Tpdf_csdf Tpdf_graph
