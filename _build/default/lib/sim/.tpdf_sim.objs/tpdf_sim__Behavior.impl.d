lib/sim/behavior.ml: List Printf Token
