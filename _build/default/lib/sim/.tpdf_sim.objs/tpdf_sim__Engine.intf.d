lib/sim/engine.mli: Behavior Token Tpdf_core Tpdf_param
