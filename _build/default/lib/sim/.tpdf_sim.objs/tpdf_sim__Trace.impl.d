lib/sim/trace.ml: Buffer Bytes Engine Float Hashtbl List Printf
