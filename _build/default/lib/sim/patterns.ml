let forward_selected ?duration_ms () =
  Behavior.make ?duration_ms (fun ctx ->
      match ctx.Behavior.inputs with
      | [ (_, toks) ] ->
          let toks = ref toks in
          List.filter_map
            (fun (ch, rate) ->
              if rate = 0 then None
              else begin
                (* replicate the last token if the output rate exceeds the
                   input count *)
                let take () =
                  match !toks with
                  | [ last ] -> last
                  | t :: rest ->
                      toks := rest;
                      t
                  | [] ->
                      failwith
                        (ctx.Behavior.actor
                       ^ ": no input tokens to forward")
                in
                Some (ch, List.init rate (fun _ -> take ()))
              end)
            ctx.Behavior.out_rates
      | inputs ->
          failwith
            (Printf.sprintf
               "Patterns.forward_selected (%s): expected one selected input, \
                got %d"
               ctx.Behavior.actor (List.length inputs)))

let vote_outcome ~equal values =
  if values = [] then invalid_arg "Patterns.vote_outcome: no votes";
  let tally = ref [] in
  List.iter
    (fun v ->
      let rec bump acc = function
        | [] -> List.rev ((v, 1) :: acc)
        | (w, n) :: rest when equal w v -> List.rev_append acc ((w, n + 1) :: rest)
        | entry :: rest -> bump (entry :: acc) rest
      in
      tally := bump [] !tally)
    values;
  List.fold_left
    (fun (bv, bn) (v, n) -> if n > bn then (v, n) else (bv, bn))
    (List.hd !tally) (List.tl !tally)

let majority_vote ?duration_ms ~equal () =
  Behavior.make ?duration_ms (fun ctx ->
      let votes =
        List.concat_map
          (fun (_, toks) ->
            List.map
              (fun t ->
                match t with
                | Token.Data v -> v
                | Token.Ctrl _ ->
                    failwith
                      (ctx.Behavior.actor ^ ": control token in a vote"))
              toks)
          ctx.Behavior.inputs
      in
      if votes = [] then failwith (ctx.Behavior.actor ^ ": empty vote");
      let winner, _ = vote_outcome ~equal votes in
      List.filter_map
        (fun (ch, rate) ->
          if rate = 0 then None
          else Some (ch, List.init rate (fun _ -> Token.Data winner)))
        ctx.Behavior.out_rates)
