type 'a t = Data of 'a | Ctrl of string

let data = function
  | Data v -> v
  | Ctrl m -> invalid_arg ("Token.data: control token " ^ m)

let ctrl = function
  | Ctrl m -> m
  | Data _ -> invalid_arg "Token.ctrl: data token"

let is_ctrl = function Ctrl _ -> true | Data _ -> false

let pp pp_data ppf = function
  | Data v -> Format.fprintf ppf "data(%a)" pp_data v
  | Ctrl m -> Format.fprintf ppf "ctrl(%s)" m
