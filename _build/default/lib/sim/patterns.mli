(** The Transaction-box action patterns of §II-B.b (after ref. \[4\]).

    Combining a Transaction kernel's mode with the right behaviour yields
    the four actions the paper highlights as “not available in usual
    dataflow MoC”:

    - {b Speculation} — several candidate paths compute the same value;
      the first to complete wins and the others are discarded.  Mode:
      {!Tpdf_core.Mode.Highest_priority_available} with equal priorities;
      behaviour: {!forward_selected}.
    - {b Redundancy with vote} — n replicas compute the value; the
      Transaction waits for all of them and outputs the majority.  Mode:
      {!Tpdf_core.Mode.All_inputs}; behaviour: {!majority_vote}.
    - {b Highest priority at a given deadline} — a clock control actor
      fires the Transaction, which picks the best input available at that
      instant.  Mode: [Highest_priority_available] with quality-ranked
      priorities plus a clock; behaviour: {!forward_selected}.
    - {b Selection of an active data-path} — a control actor names the
      path through [Input_subset] modes; behaviour: {!forward_selected}. *)

val forward_selected : ?duration_ms:('a Behavior.ctx -> float) -> unit -> 'a Behavior.t
(** Forward the tokens of the (single) selected input channel to every
    active output, replicating to match the output rates.
    @raise Failure at run time if more than one input channel was
    selected. *)

val majority_vote :
  ?duration_ms:('a Behavior.ctx -> float) ->
  equal:('a -> 'a -> bool) ->
  unit ->
  'a Behavior.t
(** Consume one token from every input replica and emit the value backed
    by the largest number of replicas (ties broken by first arrival order
    of the channels).  @raise Failure at run time if some input carried no
    data token. *)

val vote_outcome : equal:('a -> 'a -> bool) -> 'a list -> 'a * int
(** The pure voting rule behind {!majority_vote}: winning value and its
    vote count.  Exposed for testing.  @raise Invalid_argument on []. *)
