lib/image/motion.ml: Array Image
