lib/image/image.ml: Array Format Printf
