lib/image/image.mli: Format
