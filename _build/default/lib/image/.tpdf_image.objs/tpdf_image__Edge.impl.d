lib/image/edge.ml: Array Float Image Kernels Stack
