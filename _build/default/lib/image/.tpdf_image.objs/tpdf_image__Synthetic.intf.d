lib/image/synthetic.mli: Image
