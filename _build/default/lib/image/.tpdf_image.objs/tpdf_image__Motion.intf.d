lib/image/motion.mli: Image
