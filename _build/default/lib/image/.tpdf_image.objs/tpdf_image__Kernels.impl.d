lib/image/kernels.ml: Array Image
