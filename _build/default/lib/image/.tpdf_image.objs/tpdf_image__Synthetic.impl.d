lib/image/synthetic.ml: Float Image Prng Tpdf_util
