lib/image/kernels.mli: Image
