lib/image/edge.mli: Image
