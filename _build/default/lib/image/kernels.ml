let convolve img ~size kernel =
  if size mod 2 = 0 || size < 1 then
    invalid_arg "Kernels.convolve: size must be odd and positive";
  if Array.length kernel <> size * size then
    invalid_arg "Kernels.convolve: kernel length mismatch";
  let half = size / 2 in
  let w = Image.width img and h = Image.height img in
  Image.init ~width:w ~height:h (fun x y ->
      let acc = ref 0.0 in
      for ky = 0 to size - 1 do
        for kx = 0 to size - 1 do
          acc :=
            !acc
            +. (kernel.((ky * size) + kx) *. Image.get img (x + kx - half) (y + ky - half))
        done
      done;
      !acc)

let convolve3 img kernel = convolve img ~size:3 kernel

let gaussian5 =
  let raw =
    [|
      2.; 4.; 5.; 4.; 2.;
      4.; 9.; 12.; 9.; 4.;
      5.; 12.; 15.; 12.; 5.;
      4.; 9.; 12.; 9.; 4.;
      2.; 4.; 5.; 4.; 2.;
    |]
  in
  let sum = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun v -> v /. sum) raw

let quick_mask = [| -1.; 0.; -1.; 0.; 4.; 0.; -1.; 0.; -1. |]

let sobel_x = [| -1.; 0.; 1.; -2.; 0.; 2.; -1.; 0.; 1. |]

let sobel_y = [| -1.; -2.; -1.; 0.; 0.; 0.; 1.; 2.; 1. |]

(* The eight 45-degree rotations of the base compass template. *)
let rotations base =
  (* ring positions clockwise starting top-left; center stays put *)
  let ring = [| 0; 1; 2; 5; 8; 7; 6; 3 |] in
  Array.init 8 (fun r ->
      let k = Array.make 9 base.(4) in
      Array.iteri
        (fun i pos ->
          let src = ring.((i + (8 - r)) mod 8) in
          k.(pos) <- base.(src))
        ring;
      k)

let prewitt_compass =
  rotations [| 1.; 1.; 1.; 1.; -2.; 1.; -1.; -1.; -1. |]

let kirsch_compass =
  rotations [| 5.; 5.; 5.; -3.; 0.; -3.; -3.; -3.; -3. |]
