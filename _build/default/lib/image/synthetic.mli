(** Deterministic synthetic test scenes.

    The paper measures edge detectors on 1024×1024 camera images; this
    repository substitutes seeded synthetic scenes with comparable edge
    structure — geometric shapes over a smooth gradient, plus optional
    Gaussian pixel noise (edge detectors' noise sensitivity is part of what
    §IV-A discusses). *)

val scene : ?seed:int -> ?noise:float -> width:int -> height:int -> unit -> Image.t
(** Gradient background, a grid of rectangles, circles and diagonal bars,
    then additive Gaussian noise with the given standard deviation
    (default 4.0 gray levels).  Equal seeds give equal images. *)

val checkerboard : ?square:int -> width:int -> height:int -> unit -> Image.t
(** High-contrast calibration pattern (default 32-pixel squares). *)

val constant : ?value:float -> width:int -> height:int -> unit -> Image.t
(** Featureless image — edge detectors must return (almost) nothing. *)
