open Tpdf_util

let scene ?(seed = 42) ?(noise = 4.0) ~width ~height () =
  let rng = Prng.create seed in
  let img =
    Image.init ~width ~height (fun x y ->
        (* smooth diagonal gradient background *)
        60.0
        +. (80.0 *. (float_of_int (x + y) /. float_of_int (width + height))))
  in
  let w = width and h = height in
  let rect x0 y0 x1 y1 v =
    for y = max 0 y0 to min (h - 1) y1 do
      for x = max 0 x0 to min (w - 1) x1 do
        Image.set img x y v
      done
    done
  in
  let circle cx cy r v =
    for y = max 0 (cy - r) to min (h - 1) (cy + r) do
      for x = max 0 (cx - r) to min (w - 1) (cx + r) do
        let dx = x - cx and dy = y - cy in
        if (dx * dx) + (dy * dy) <= r * r then Image.set img x y v
      done
    done
  in
  (* A deterministic arrangement of shapes scaled to the image. *)
  let u = w / 8 and v = h / 8 in
  rect u v (3 * u) (3 * v) 220.0;
  rect (5 * u) v (7 * u) (2 * v) 30.0;
  circle (2 * u) (6 * v) (min u v) 200.0;
  circle (6 * u) (6 * v) (min u v * 3 / 2) 90.0;
  (* diagonal bar *)
  for i = 0 to min w h - 1 do
    for t = -2 to 2 do
      let x = i + t and y = h - 1 - i in
      if x >= 0 && x < w && y >= 0 && y < h then Image.set img x y 250.0
    done
  done;
  (* pixel noise *)
  if noise > 0.0 then
    for y = 0 to h - 1 do
      for x = 0 to w - 1 do
        let p = Image.get img x y +. (noise *. Prng.gaussian rng) in
        Image.set img x y (Float.max 0.0 (Float.min 255.0 p))
      done
    done;
  img

let checkerboard ?(square = 32) ~width ~height () =
  if square < 1 then invalid_arg "Synthetic.checkerboard: square must be positive";
  Image.init ~width ~height (fun x y ->
      if (x / square + (y / square)) mod 2 = 0 then 230.0 else 25.0)

let constant ?(value = 128.0) ~width ~height () =
  Image.init ~width ~height (fun _ _ -> value)
