type detector = Quick_mask | Sobel | Prewitt | Kirsch | Canny

let all = [ Quick_mask; Sobel; Prewitt; Kirsch; Canny ]

let name = function
  | Quick_mask -> "quick_mask"
  | Sobel -> "sobel"
  | Prewitt -> "prewitt"
  | Kirsch -> "kirsch"
  | Canny -> "canny"

let quality = function
  | Quick_mask -> 1
  | Sobel -> 2
  | Prewitt -> 3
  | Kirsch -> 4
  | Canny -> 5

(* The quick mask has only five non-zero coefficients; one fused pass. *)
let quick_mask ?(threshold = 30.0) img =
  let w = Image.width img and h = Image.height img in
  let response =
    Image.init ~width:w ~height:h (fun x y ->
        abs_float
          ((4.0 *. Image.get img x y)
          -. Image.get img (x - 1) (y - 1)
          -. Image.get img (x + 1) (y - 1)
          -. Image.get img (x - 1) (y + 1)
          -. Image.get img (x + 1) (y + 1)))
  in
  Image.threshold response threshold

(* Both Sobel responses in one fused traversal of the neighbourhood. *)
let gradient_magnitude img =
  let w = Image.width img and h = Image.height img in
  Image.init ~width:w ~height:h (fun x y ->
      let p00 = Image.get img (x - 1) (y - 1)
      and p10 = Image.get img x (y - 1)
      and p20 = Image.get img (x + 1) (y - 1)
      and p01 = Image.get img (x - 1) y
      and p21 = Image.get img (x + 1) y
      and p02 = Image.get img (x - 1) (y + 1)
      and p12 = Image.get img x (y + 1)
      and p22 = Image.get img (x + 1) (y + 1) in
      let a = p20 +. (2.0 *. p21) +. p22 -. p00 -. (2.0 *. p01) -. p02 in
      let b = p02 +. (2.0 *. p12) +. p22 -. p00 -. (2.0 *. p10) -. p20 in
      sqrt ((a *. a) +. (b *. b)))

let sobel ?(threshold = 120.0) img =
  Image.threshold (gradient_magnitude img) threshold

(* All eight compass responses are evaluated in a single fused pass over
   the 3x3 neighbourhood — one image traversal instead of eight
   convolutions. *)
let compass masks ?(threshold = 120.0) img =
  let w = Image.width img and h = Image.height img in
  let nb = Array.make 9 0.0 in
  let mag =
    Image.init ~width:w ~height:h (fun x y ->
        let i = ref 0 in
        for dy = -1 to 1 do
          for dx = -1 to 1 do
            nb.(!i) <- Image.get img (x + dx) (y + dy);
            incr i
          done
        done;
        let best = ref 0.0 in
        Array.iter
          (fun mask ->
            let acc = ref 0.0 in
            for j = 0 to 8 do
              acc := !acc +. (mask.(j) *. nb.(j))
            done;
            let v = abs_float !acc in
            if v > !best then best := v)
          masks;
        !best)
  in
  Image.threshold mag threshold

let prewitt ?threshold img = compass Kernels.prewitt_compass ?threshold img

let kirsch ?(threshold = 400.0) img =
  compass Kernels.kirsch_compass ~threshold img

let canny ?(low = 40.0) ?(high = 90.0) img =
  let w = Image.width img and h = Image.height img in
  let blurred = Kernels.convolve img ~size:5 Kernels.gaussian5 in
  let gx = Kernels.convolve3 blurred Kernels.sobel_x in
  let gy = Kernels.convolve3 blurred Kernels.sobel_y in
  let mag =
    Image.init ~width:w ~height:h (fun x y ->
        let a = Image.get gx x y and b = Image.get gy x y in
        sqrt ((a *. a) +. (b *. b)))
  in
  (* Non-maximum suppression along the quantized gradient direction. *)
  let nms =
    Image.init ~width:w ~height:h (fun x y ->
        let m = Image.get mag x y in
        if m = 0.0 then 0.0
        else
          let a = Image.get gx x y and b = Image.get gy x y in
          let angle = atan2 b a in
          let sector =
            let deg = angle *. 180.0 /. Float.pi in
            let deg = if deg < 0.0 then deg +. 180.0 else deg in
            if deg < 22.5 || deg >= 157.5 then `H
            else if deg < 67.5 then `D1
            else if deg < 112.5 then `V
            else `D2
          in
          let n1, n2 =
            match sector with
            | `H -> (Image.get mag (x - 1) y, Image.get mag (x + 1) y)
            | `V -> (Image.get mag x (y - 1), Image.get mag x (y + 1))
            | `D1 -> (Image.get mag (x + 1) (y - 1), Image.get mag (x - 1) (y + 1))
            | `D2 -> (Image.get mag (x - 1) (y - 1), Image.get mag (x + 1) (y + 1))
          in
          if m >= n1 && m >= n2 then m else 0.0)
  in
  (* Double threshold + hysteresis: BFS from strong pixels through weak
     ones. *)
  let out = Image.create ~width:w ~height:h in
  let stack = Stack.create () in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if Image.get nms x y >= high then begin
        Image.set out x y 255.0;
        Stack.push (x, y) stack
      end
    done
  done;
  while not (Stack.is_empty stack) do
    let x, y = Stack.pop stack in
    for dy = -1 to 1 do
      for dx = -1 to 1 do
        let nx = x + dx and ny = y + dy in
        if
          nx >= 0 && nx < w && ny >= 0 && ny < h
          && Image.get out nx ny = 0.0
          && Image.get nms nx ny >= low
        then begin
          Image.set out nx ny 255.0;
          Stack.push (nx, ny) stack
        end
      done
    done
  done;
  out

let run = function
  | Quick_mask -> quick_mask ?threshold:None
  | Sobel -> sobel ?threshold:None
  | Prewitt -> prewitt ?threshold:None
  | Kirsch -> kirsch ?threshold:None
  | Canny -> canny ?low:None ?high:None

(* Milliseconds per megapixel, fitted to the paper's Fig. 6 table
   (1024x1024 ~ 1.05 Mpix: 200 / 473 / 522 / 1040 ms); Kirsch, not measured
   by the paper, is modelled like Prewitt (same 8-mask structure). *)
let ms_per_mpix = function
  | Quick_mask -> 190.0
  | Sobel -> 450.0
  | Prewitt -> 498.0
  | Kirsch -> 505.0
  | Canny -> 992.0

let model_duration_ms d ~width ~height =
  ms_per_mpix d *. (float_of_int (width * height) /. 1.0e6)
