lib/csdf/buffers.mli: Concrete Format Schedule
