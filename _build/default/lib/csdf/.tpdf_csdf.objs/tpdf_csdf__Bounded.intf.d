lib/csdf/bounded.mli: Concrete
