lib/csdf/schedule.mli: Concrete Format
