lib/csdf/graph.mli: Format Poly Tpdf_graph Tpdf_param
