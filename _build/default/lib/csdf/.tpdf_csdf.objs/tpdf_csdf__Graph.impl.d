lib/csdf/graph.ml: Array Expr Format Hashtbl List Poly Printf String Tpdf_graph Tpdf_param
