lib/csdf/examples.ml: Graph List Poly Printf Tpdf_param
