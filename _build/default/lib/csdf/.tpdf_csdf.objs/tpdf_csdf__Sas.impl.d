lib/csdf/sas.ml: Array Concrete Graph Hashtbl List Schedule Tpdf_graph
