lib/csdf/schedule.ml: Array Concrete Format Graph Hashtbl List Tpdf_graph
