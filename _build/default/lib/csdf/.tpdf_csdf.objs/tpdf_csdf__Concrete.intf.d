lib/csdf/concrete.mli: Graph Tpdf_param Valuation
