lib/csdf/sas.mli: Concrete Format
