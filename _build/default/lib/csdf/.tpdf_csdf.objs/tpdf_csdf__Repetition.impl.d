lib/csdf/repetition.ml: Format Frac Graph Hashtbl List Poly Printf Q Queue Tpdf_graph Tpdf_param Tpdf_util Valuation
