lib/csdf/examples.mli: Graph
