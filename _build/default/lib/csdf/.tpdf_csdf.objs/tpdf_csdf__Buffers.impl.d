lib/csdf/buffers.ml: Format List Printf Schedule String
