lib/csdf/repetition.mli: Format Graph Poly Tpdf_param Valuation
