lib/csdf/concrete.ml: Array Graph Hashtbl List Poly Printf Repetition Tpdf_graph Tpdf_param Valuation
