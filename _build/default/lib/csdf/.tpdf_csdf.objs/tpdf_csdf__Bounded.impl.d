lib/csdf/bounded.ml: Array Concrete Graph Hashtbl List Printf Schedule String Tpdf_graph
