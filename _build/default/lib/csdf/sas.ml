module Digraph = Tpdf_graph.Digraph

type t = (string * int) list

(* Replay bursts over the token state; None on underflow. *)
let replay conc bursts =
  let g = Concrete.graph conc in
  let tokens = Hashtbl.create 16 in
  List.iter
    (fun (e : (string, Graph.channel) Digraph.edge) ->
      Hashtbl.replace tokens e.id e.label.init)
    (Graph.channels g);
  let count = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace count a 0) (Graph.actors g);
  let fire_once a =
    let n = Hashtbl.find count a in
    let phase = n mod Graph.phases g a in
    let ok =
      List.for_all
        (fun (e : (string, Graph.channel) Digraph.edge) ->
          Hashtbl.find tokens e.id
          >= (Concrete.chan conc e.id).Concrete.cons.(phase))
        (Graph.in_channels g a)
    in
    if not ok then false
    else begin
      List.iter
        (fun (e : (string, Graph.channel) Digraph.edge) ->
          Hashtbl.replace tokens e.id
            (Hashtbl.find tokens e.id - (Concrete.chan conc e.id).Concrete.cons.(phase)))
        (Graph.in_channels g a);
      List.iter
        (fun (e : (string, Graph.channel) Digraph.edge) ->
          Hashtbl.replace tokens e.id
            (Hashtbl.find tokens e.id + (Concrete.chan conc e.id).Concrete.prod.(phase)))
        (Graph.out_channels g a);
      Hashtbl.replace count a (n + 1);
      true
    end
  in
  let rec bursts_ok = function
    | [] -> Some count
    | (a, n) :: rest ->
        let rec go i = i >= n || (fire_once a && go (i + 1)) in
        if go 0 then bursts_ok rest else None
  in
  bursts_ok bursts

let is_valid conc bursts =
  (* every actor exactly once, with its full repetition count *)
  let actors = Graph.actors (Concrete.graph conc) in
  let names = List.map fst bursts in
  List.sort compare names = List.sort compare actors
  && List.for_all (fun (a, n) -> n = Concrete.q conc a) bursts
  && replay conc bursts <> None

(* Greedy search: repeatedly pick an actor whose whole burst can fire now.
   Complete-burst firing is monotone in the same way single firings are,
   so greedy choice with backtracking-free commitment is safe for
   existence... except it is not in general; we add one level of
   backtracking over the first blocked prefix to stay exact on small
   graphs. *)
let find conc =
  let g = Concrete.graph conc in
  let actors = Graph.actors g in
  let rec search done_ acc =
    if List.length done_ = List.length actors then Some (List.rev acc)
    else
      let candidates =
        List.filter (fun a -> not (List.mem a done_)) actors
      in
      let try_actor a =
        let bursts = List.rev ((a, Concrete.q conc a) :: acc) in
        if replay conc bursts <> None then
          search (a :: done_) ((a, Concrete.q conc a) :: acc)
        else None
      in
      List.fold_left
        (fun found a -> match found with Some _ -> found | None -> try_actor a)
        None candidates
  in
  search [] []

let pp ppf t = Schedule.pp_compressed ppf t
