(** Sequential schedule construction, liveness, and occupancy traces.

    Liveness of a consistent (C)SDF graph is decided by constructing a
    schedule for one basic iteration (§III-C): data-driven execution is
    confluent, so {e any} maximal firing order either completes the
    iteration (live) or stalls (deadlock) independently of the choices
    made.  The policy only changes {e which} schedule is found:

    - [Eager] fires the first enabled actor in declaration order;
    - [Late_first] prefers the enabled actor with the most remaining
      firings, which reproduces the {e late schedules} of the paper's
      reference [8] (e.g. [B C C B] for the cycle of Fig. 4(b));
    - [Min_buffer] greedily fires the enabled actor whose firing minimizes
      total channel occupancy, a standard heuristic for buffer-efficient
      single-processor schedules. *)

type policy = Eager | Late_first | Min_buffer

type firing = {
  actor : string;
  phase : int;  (** phase executed, [index mod τ] *)
  index : int;  (** 0-based firing count of this actor *)
}

type trace = {
  firings : firing list;  (** in execution order *)
  max_occupancy : (int * int) list;  (** per channel id, including initial *)
  returned_to_initial : bool;
      (** whether every channel holds exactly its initial tokens again *)
}

type outcome = Complete of trace | Deadlock of { fired : firing list; stuck : string list }
(** [Deadlock.stuck] lists the actors with remaining firings. *)

val run :
  ?policy:policy ->
  ?iterations:int ->
  ?targets:(string * int) list ->
  ?active_channel:(int -> bool) ->
  Concrete.t ->
  outcome
(** Execute [iterations] (default 1) basic iterations.

    [targets] overrides the per-iteration firing counts; actors absent
    from the list get a target of 0 (this differs from the runtime
    engine's targets, which default absentees to the repetition vector —
    here a partial list delimits a sub-execution such as a local
    iteration).  [active_channel] masks channels out of the
    simulation entirely — the TPDF buffer analysis uses this to model
    topologies where a control decision removed edges while keeping the
    full graph's iteration vector (§III-A: “the graph has a unique
    iteration vector”). *)

val is_live : Concrete.t -> bool

val compress : firing list -> (string * int) list
(** Run-length encoding by actor, e.g. [\[("a3",2); ("a1",3); ("a2",2)\]]. *)

val pp_compressed : Format.formatter -> (string * int) list -> unit
(** Prints e.g. ["(a3)^2 (a1)^3 (a2)^2"]. *)
