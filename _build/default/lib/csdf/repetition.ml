open Tpdf_param
open Tpdf_util
module Digraph = Tpdf_graph.Digraph

type t = { r : (string * Poly.t) list; q : (string * Poly.t) list }

exception Inconsistent of string
exception Disconnected

let ratio_exn what e p =
  if Poly.is_zero p then
    invalid_arg
      (Printf.sprintf "Repetition.solve: zero total %s rate on channel e%d"
         what e)

let topology_matrix g =
  List.map
    (fun (e : (string, Graph.channel) Digraph.edge) ->
      let x = Graph.prod_total e.label and y = Graph.cons_total e.label in
      let entries =
        if e.src = e.dst then [ (e.src, Poly.sub x y) ]
        else [ (e.src, x); (e.dst, Poly.neg y) ]
      in
      (e.id, List.filter (fun (_, p) -> not (Poly.is_zero p)) entries))
    (Graph.channels g)

let verify_against_matrix g t =
  List.for_all
    (fun (_, row) ->
      let dot =
        List.fold_left
          (fun acc (a, coeff) ->
            Poly.add acc (Poly.mul coeff (List.assoc a t.r)))
          Poly.zero row
      in
      Poly.is_zero dot)
    (topology_matrix g)

(* Propagate r along a spanning tree of the undirected skeleton. *)
let propagate g =
  let dg = Graph.digraph g in
  match Digraph.vertices dg with
  | [] -> invalid_arg "Repetition.solve: empty graph"
  | root :: _ ->
      let r = Hashtbl.create 16 in
      Hashtbl.replace r root Frac.one;
      let queue = Queue.create () in
      Queue.add root queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        let rv = Hashtbl.find r v in
        List.iter
          (fun (e : (string, Graph.channel) Digraph.edge) ->
            let x = Graph.prod_total e.label and y = Graph.cons_total e.label in
            ratio_exn "production" e.id x;
            ratio_exn "consumption" e.id y;
            let other, rother =
              if e.src = v then
                (e.dst, Frac.mul rv (Frac.make x y))
              else (e.src, Frac.mul rv (Frac.make y x))
            in
            if not (Hashtbl.mem r other) then begin
              Hashtbl.replace r other rother;
              Queue.add other queue
            end)
          (Digraph.incident dg v)
      done;
      if not (List.for_all (Hashtbl.mem r) (Digraph.vertices dg)) then
        raise Disconnected;
      r

let verify g r =
  List.iter
    (fun (e : (string, Graph.channel) Digraph.edge) ->
      let x = Graph.prod_total e.label and y = Graph.cons_total e.label in
      let lhs = Frac.mul (Hashtbl.find r e.src) (Frac.of_poly x)
      and rhs = Frac.mul (Hashtbl.find r e.dst) (Frac.of_poly y) in
      if not (Frac.equal lhs rhs) then
        raise
          (Inconsistent
             (Format.asprintf
                "channel e%d (%s -> %s) is unbalanced: %a * %a <> %a * %a" e.id
                e.src e.dst Frac.pp (Hashtbl.find r e.src) Poly.pp x Frac.pp
                (Hashtbl.find r e.dst) Poly.pp y)))
    (Graph.channels g)

(* Normalize a vector of rational functions to the least positive vector of
   integer-coefficient polynomials: clear polynomial denominators, then
   cancel common numeric content and common parameter powers. *)
let normalize entries =
  let entries = ref entries in
  let fractional () =
    List.find_opt
      (fun (_, f) -> not (Poly.equal (Frac.den f) Poly.one))
      !entries
  in
  let rec clear () =
    match fractional () with
    | None -> ()
    | Some (_, f) ->
        let d = Frac.of_poly (Frac.den f) in
        entries := List.map (fun (a, x) -> (a, Frac.mul x d)) !entries;
        clear ()
  in
  clear ();
  let polys =
    List.map
      (fun (a, f) ->
        match Frac.to_poly f with
        | Some p -> (a, p)
        | None -> assert false)
      !entries
  in
  (* Common numeric content. *)
  let content =
    List.fold_left (fun acc (_, p) -> Q.gcd acc (Poly.content p)) Q.zero polys
  in
  let polys =
    if Q.is_zero content then polys
    else List.map (fun (a, p) -> (a, Poly.scale (Q.inv content) p)) polys
  in
  (* Common polynomial factor (parameter powers and beyond): the primitive
     multivariate GCD of all entries. *)
  let common =
    List.fold_left (fun acc (_, p) -> Poly.gcd acc p) Poly.zero polys
  in
  let polys =
    if Poly.is_zero common || Poly.equal common Poly.one then polys
    else
      List.map
        (fun (a, p) ->
          match Poly.divide p common with
          | Some q -> (a, q)
          (* gcd (exact or fallback) always divides every fold argument *)
          | None -> assert false)
        polys
  in
  (* Fix the sign using the first entry. *)
  match polys with
  | (_, p) :: _ when not (Poly.is_zero p) && Q.sign (snd (Poly.leading p)) < 0
    ->
      List.map (fun (a, p) -> (a, Poly.neg p)) polys
  | _ -> polys

let solve g =
  let raw = propagate g in
  verify g raw;
  let actor_order = Graph.actors g in
  let entries = List.map (fun a -> (a, Hashtbl.find raw a)) actor_order in
  let r = normalize entries in
  let q =
    List.map (fun (a, p) -> (a, Poly.mul (Poly.of_int (Graph.phases g a)) p)) r
  in
  { r; q }

let is_consistent g =
  match solve g with
  | _ -> true
  | exception (Inconsistent _ | Disconnected) -> false

let r_of t a = List.assoc a t.r

let q_of t a = List.assoc a t.q

let q_int t v =
  List.map
    (fun (a, p) ->
      let n = Poly.eval_int (Valuation.env v) p in
      if n <= 0 then
        invalid_arg
          (Printf.sprintf
             "Repetition.q_int: repetition count of %s is %d under the given \
              valuation"
             a n);
      (a, n))
    t.q

let pp ppf t =
  Format.fprintf ppf "@[<v>r = [%a]@,q = [%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (a, p) -> Format.fprintf ppf "%s:%a" a Poly.pp p))
    t.r
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (a, p) -> Format.fprintf ppf "%s:%a" a Poly.pp p))
    t.q
