(** Single-appearance schedules (SAS).

    A single-appearance schedule fires each actor in one contiguous burst —
    the looped schedule (a{_1}){^q1} (a{_2}){^q2} … — which minimizes code
    size on embedded targets (each actor's code appears once).  For acyclic
    graphs a topological order always yields a valid SAS; for cyclic graphs
    one may not exist (Fig. 1's graph needs (a3)²(a1)³(a2)², which {e is}
    single-appearance, but e.g. Fig. 4(b) needs interleaving and has
    none). *)

type t = (string * int) list
(** Actor bursts in order, e.g. [\[("a3",2); ("a1",3); ("a2",2)\]]. *)

val find : Concrete.t -> t option
(** A valid SAS if one exists with these heuristics: try every topological
    order refinement by greedily firing whole bursts; [None] when no
    ordering of complete bursts executes (interleaving required). *)

val is_valid : Concrete.t -> t -> bool
(** Replay the bursts and check the iteration completes without a channel
    going negative and all counts match the repetition vector. *)

val pp : Format.formatter -> t -> unit
