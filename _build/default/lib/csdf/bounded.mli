(** Execution with bounded channels, and minimal deadlock-free capacities.

    {!Schedule} measures the occupancy of an unbounded execution; this
    module answers the converse question: {e given} per-channel capacities,
    can one iteration still complete (production blocks while a channel is
    full), and what is a minimal capacity assignment that stays
    deadlock-free?  The search starts from the per-channel lower bound
    (the largest single production/consumption step and the initial
    tokens) and relaxes exactly the channels whose fullness blocks
    progress — a standard buffer-minimization scheme for (C)SDF. *)

type outcome =
  | Fits of { max_occupancy : (int * int) list }
      (** executes to completion within the given capacities *)
  | Blocked of { full_channels : int list; stuck : string list }
      (** deadlocked: channels whose fullness blocks an otherwise enabled
          actor, and the actors with remaining firings *)

val run : Concrete.t -> capacities:(int -> int) -> outcome
(** Execute one iteration with blocking writes.  A firing is enabled only
    when every input has enough tokens {e and} every output has room for
    the tokens it will produce.  @raise Invalid_argument if some capacity
    is smaller than that channel's initial tokens. *)

type report = {
  capacities : (int * int) list;  (** minimal found, per channel id *)
  total : int;
  relaxations : int;  (** how many capacity increases the search needed *)
}

val minimize : ?max_steps:int -> Concrete.t -> report
(** Greedy relaxation search for a minimal deadlock-free assignment.
    [max_steps] (default 10_000) bounds the search.
    @raise Failure if the graph deadlocks even with unbounded channels or
    the step budget is exhausted. *)

val lower_bound : Concrete.t -> int -> int
(** The structural lower bound used as the search's starting point for a
    channel: max(initial tokens, largest production step, largest
    consumption step). *)
