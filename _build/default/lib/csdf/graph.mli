(** Cyclo-Static Dataflow graphs (Bilsen et al., 1995 — §II-A of the paper).

    An actor has a cyclic execution sequence of length τ (its phase count);
    a channel carries a production-rate sequence (one entry per phase of the
    producer) and a consumption-rate sequence (one entry per phase of the
    consumer), plus an initial token count.  Rates are symbolic polynomials
    so that the same structure serves as the skeleton of parameterized TPDF
    graphs; a plain CSDF graph simply uses constant polynomials. *)

open Tpdf_param

type channel = {
  prod : Poly.t array;  (** per-phase production rates (length τ of src) *)
  cons : Poly.t array;  (** per-phase consumption rates (length τ of dst) *)
  init : int;  (** initial tokens *)
}

type t

val create : unit -> t

val add_actor : t -> string -> phases:int -> unit
(** @raise Invalid_argument on duplicate name or [phases < 1]. *)

val add_channel :
  t ->
  src:string ->
  dst:string ->
  prod:Poly.t array ->
  cons:Poly.t array ->
  ?init:int ->
  unit ->
  int
(** Returns the channel id.  Rate-sequence lengths must match the phase
    counts of the endpoints and initial tokens must be non-negative.
    @raise Invalid_argument otherwise, or on unknown actors. *)

val mem_actor : t -> string -> bool
val actors : t -> string list
val phases : t -> string -> int
(** @raise Not_found on unknown actor. *)

val channels : t -> (string, channel) Tpdf_graph.Digraph.edge list
val channel : t -> int -> (string, channel) Tpdf_graph.Digraph.edge
val digraph : t -> (string, channel) Tpdf_graph.Digraph.t
(** The underlying directed multigraph (view, do not mutate). *)

val in_channels : t -> string -> (string, channel) Tpdf_graph.Digraph.edge list
val out_channels : t -> string -> (string, channel) Tpdf_graph.Digraph.edge list

val prod_total : channel -> Poly.t
(** X(τ): tokens produced by one full cycle of the producer. *)

val cons_total : channel -> Poly.t
(** Y(τ): tokens consumed by one full cycle of the consumer. *)

val parameters : t -> string list
(** All parameters occurring in any rate, sorted. *)

val rates : string list -> Poly.t array
(** Parse a rate sequence from strings, e.g. [rates \["1"; "0"; "p"\]].
    @raise Tpdf_param.Expr.Parse_error on bad syntax. *)

val const_rates : int list -> Poly.t array
(** Constant rate sequence, e.g. [const_rates \[1; 0; 1\]]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable listing of actors and channels. *)

val pp_dot : Format.formatter -> t -> unit
(** Graphviz export with rate annotations. *)
