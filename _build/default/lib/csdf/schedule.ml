module Digraph = Tpdf_graph.Digraph

type policy = Eager | Late_first | Min_buffer

type firing = { actor : string; phase : int; index : int }

type trace = {
  firings : firing list;
  max_occupancy : (int * int) list;
  returned_to_initial : bool;
}

type outcome =
  | Complete of trace
  | Deadlock of { fired : firing list; stuck : string list }

type state = {
  tokens : (int, int) Hashtbl.t; (* channel id -> current tokens *)
  count : (string, int) Hashtbl.t; (* actor -> completed firings *)
  max_occ : (int, int) Hashtbl.t;
}

let init_state c =
  let tokens = Hashtbl.create 16 and max_occ = Hashtbl.create 16 in
  List.iter
    (fun (e : (string, Graph.channel) Digraph.edge) ->
      Hashtbl.replace tokens e.id e.label.init;
      Hashtbl.replace max_occ e.id e.label.init)
    (Graph.channels (Concrete.graph c));
  let count = Hashtbl.create 16 in
  List.iter
    (fun a -> Hashtbl.replace count a 0)
    (Graph.actors (Concrete.graph c));
  { tokens; count; max_occ }

let enabled act c st a =
  let g = Concrete.graph c in
  let n = Hashtbl.find st.count a in
  let phase = n mod Graph.phases g a in
  List.for_all
    (fun (e : (string, Graph.channel) Digraph.edge) ->
      (not (act e.id))
      ||
      let ch = Concrete.chan c e.id in
      Hashtbl.find st.tokens e.id >= ch.cons.(phase))
    (Graph.in_channels g a)

let fire act c st a =
  let g = Concrete.graph c in
  let n = Hashtbl.find st.count a in
  let phase = n mod Graph.phases g a in
  List.iter
    (fun (e : (string, Graph.channel) Digraph.edge) ->
      if act e.id then
        let ch = Concrete.chan c e.id in
        Hashtbl.replace st.tokens e.id
          (Hashtbl.find st.tokens e.id - ch.cons.(phase)))
    (Graph.in_channels g a);
  List.iter
    (fun (e : (string, Graph.channel) Digraph.edge) ->
      if act e.id then begin
        let ch = Concrete.chan c e.id in
        let t = Hashtbl.find st.tokens e.id + ch.prod.(phase) in
        Hashtbl.replace st.tokens e.id t;
        if t > Hashtbl.find st.max_occ e.id then
          Hashtbl.replace st.max_occ e.id t
      end)
    (Graph.out_channels g a);
  Hashtbl.replace st.count a (n + 1);
  { actor = a; phase; index = n }

(* Net token delta of firing [a] in its current phase (for Min_buffer). *)
let firing_delta act c st a =
  let g = Concrete.graph c in
  let n = Hashtbl.find st.count a in
  let phase = n mod Graph.phases g a in
  let rate field acc (e : (string, Graph.channel) Digraph.edge) =
    if act e.id then acc + field (Concrete.chan c e.id) phase else acc
  in
  let consumed =
    List.fold_left (rate (fun ch i -> ch.Concrete.cons.(i))) 0 (Graph.in_channels g a)
  in
  let produced =
    List.fold_left (rate (fun ch i -> ch.Concrete.prod.(i))) 0 (Graph.out_channels g a)
  in
  produced - consumed

let run ?(policy = Eager) ?(iterations = 1) ?targets
    ?(active_channel = fun _ -> true) c =
  if iterations < 1 then invalid_arg "Schedule.run: iterations must be >= 1";
  let g = Concrete.graph c in
  let actors = Graph.actors g in
  let base_target a =
    match targets with
    | None -> Concrete.q c a
    | Some l -> ( match List.assoc_opt a l with Some n -> n | None -> 0)
  in
  let target a = iterations * base_target a in
  let act = active_channel in
  let st = init_state c in
  let total = List.fold_left (fun acc a -> acc + target a) 0 actors in
  let fired = ref [] in
  let n_fired = ref 0 in
  let stalled = ref false in
  let last = ref None in
  while (not !stalled) && !n_fired < total do
    let candidates =
      List.filter
        (fun a -> Hashtbl.find st.count a < target a && enabled act c st a)
        actors
    in
    let choice =
      match (policy, candidates) with
      | _, [] -> None
      | Eager, a :: _ -> Some a
      | Late_first, _ -> (
          (* Late-schedule heuristic (ref [8] of the paper): keep firing
             the current actor while it can, otherwise switch to the actor
             with the most remaining firings.  Reproduces (a3)^2(a1)^3(a2)^2
             for Fig. 1 and the late schedule (B C C B) for Fig. 4(b). *)
          match !last with
          | Some a when List.mem a candidates -> Some a
          | _ ->
              let remaining a = target a - Hashtbl.find st.count a in
              Some
                (List.fold_left
                   (fun best a ->
                     if remaining a > remaining best then a else best)
                   (List.hd candidates) (List.tl candidates)))
      | Min_buffer, _ ->
          let delta = firing_delta act c st in
          Some
            (List.fold_left
               (fun best a -> if delta a < delta best then a else best)
               (List.hd candidates) (List.tl candidates))
    in
    match choice with
    | None -> stalled := true
    | Some a ->
        fired := fire act c st a :: !fired;
        last := Some a;
        incr n_fired
  done;
  if !stalled then
    Deadlock
      {
        fired = List.rev !fired;
        stuck =
          List.filter (fun a -> Hashtbl.find st.count a < target a) actors;
      }
  else
    let returned =
      List.for_all
        (fun (e : (string, Graph.channel) Digraph.edge) ->
          (not (act e.id)) || Hashtbl.find st.tokens e.id = e.label.init)
        (Graph.channels g)
    in
    Complete
      {
        firings = List.rev !fired;
        max_occupancy =
          List.filter_map
            (fun (e : (string, Graph.channel) Digraph.edge) ->
              if act e.id then Some (e.id, Hashtbl.find st.max_occ e.id)
              else None)
            (Graph.channels g);
        returned_to_initial = returned;
      }

let is_live c = match run c with Complete _ -> true | Deadlock _ -> false

let compress firings =
  let rec go acc = function
    | [] -> List.rev acc
    | { actor; _ } :: rest -> (
        match acc with
        | (a, n) :: acc' when a = actor -> go ((a, n + 1) :: acc') rest
        | _ -> go ((actor, 1) :: acc) rest)
  in
  go [] firings

let pp_compressed ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    (fun ppf (a, n) ->
      if n = 1 then Format.pp_print_string ppf a
      else Format.fprintf ppf "(%s)^%d" a n)
    ppf l
