(** CSDF graphs with all rates evaluated under a parameter valuation.

    Simulation-based analyses (liveness, schedule construction, buffer
    bounds) work on concrete integer rates.  A plain CSDF graph concretizes
    under the empty valuation. *)

open Tpdf_param

type chan = { prod : int array; cons : int array; init : int }

type t

val make : Graph.t -> Valuation.t -> t
(** Evaluates every rate and the repetition vector.
    @raise Invalid_argument on fractional or negative rates
    @raise Repetition.Inconsistent / Repetition.Disconnected accordingly. *)

val graph : t -> Graph.t
val valuation : t -> Valuation.t

val q : t -> string -> int
(** Firings of the actor in one iteration.  @raise Not_found. *)

val q_vector : t -> (string * int) list

val chan : t -> int -> chan
(** Concrete rates of a channel id.  @raise Not_found. *)

val cumulative : int array -> int -> int
(** [cumulative rates n] is the total number of tokens over the first [n]
    firings of a cyclic rate sequence (the X/Y functions of §II-A). *)

val firings_needed : int array -> int -> int
(** [firings_needed rates k] is the least [n] with [cumulative rates n >= k].
    Used by the Actor Dependence Function.  @raise Invalid_argument when the
    sequence is all-zero and [k > 0]. *)
