open Tpdf_param

type chan = { prod : int array; cons : int array; init : int }

type t = {
  graph : Graph.t;
  valuation : Valuation.t;
  q_tbl : (string, int) Hashtbl.t;
  chans : (int, chan) Hashtbl.t;
}

let eval_rates v what seq =
  Array.map
    (fun p ->
      let n = Poly.eval_int (Valuation.env v) p in
      if n < 0 then
        invalid_arg
          (Printf.sprintf "Concrete.make: negative %s rate under valuation"
             what);
      n)
    seq

let make graph valuation =
  let rep = Repetition.solve graph in
  let q_tbl = Hashtbl.create 16 in
  List.iter (fun (a, n) -> Hashtbl.replace q_tbl a n) (Repetition.q_int rep valuation);
  let chans = Hashtbl.create 16 in
  List.iter
    (fun (e : (string, Graph.channel) Tpdf_graph.Digraph.edge) ->
      Hashtbl.replace chans e.id
        {
          prod = eval_rates valuation "production" e.label.prod;
          cons = eval_rates valuation "consumption" e.label.cons;
          init = e.label.init;
        })
    (Graph.channels graph);
  { graph; valuation; q_tbl; chans }

let graph t = t.graph
let valuation t = t.valuation

let q t a =
  match Hashtbl.find_opt t.q_tbl a with
  | Some n -> n
  | None -> raise Not_found

let q_vector t = List.map (fun a -> (a, q t a)) (Graph.actors t.graph)

let chan t id =
  match Hashtbl.find_opt t.chans id with
  | Some c -> c
  | None -> raise Not_found

let cumulative rates n =
  let len = Array.length rates in
  let total = Array.fold_left ( + ) 0 rates in
  let full = n / len and rem = n mod len in
  let prefix = ref 0 in
  for i = 0 to rem - 1 do
    prefix := !prefix + rates.(i)
  done;
  (full * total) + !prefix

let firings_needed rates k =
  if k <= 0 then 0
  else begin
    let total = Array.fold_left ( + ) 0 rates in
    if total = 0 then
      invalid_arg "Concrete.firings_needed: all-zero rate sequence";
    let len = Array.length rates in
    (* Skip whole cycles, then walk the remainder. *)
    let full = (k - 1) / total in
    let n = ref (full * len) and acc = ref (full * total) in
    while !acc < k do
      acc := !acc + rates.(!n mod len);
      incr n
    done;
    !n
  end
