open Tpdf_param
module Digraph = Tpdf_graph.Digraph

type channel = { prod : Poly.t array; cons : Poly.t array; init : int }

type t = {
  dg : (string, channel) Digraph.t;
  phases_tbl : (string, int) Hashtbl.t;
}

let create () = { dg = Digraph.create (); phases_tbl = Hashtbl.create 16 }

let mem_actor t name = Hashtbl.mem t.phases_tbl name

let add_actor t name ~phases =
  if phases < 1 then
    invalid_arg (Printf.sprintf "Csdf.add_actor %s: phases must be >= 1" name);
  if mem_actor t name then
    invalid_arg (Printf.sprintf "Csdf.add_actor: duplicate actor %s" name);
  Hashtbl.replace t.phases_tbl name phases;
  Digraph.add_vertex t.dg name

let phases t name =
  match Hashtbl.find_opt t.phases_tbl name with
  | Some p -> p
  | None -> raise Not_found

let check_rate_seq what actor expected seq =
  if Array.length seq <> expected then
    invalid_arg
      (Printf.sprintf
         "Csdf.add_channel: %s rate sequence of %s has length %d, expected \
          %d (one per phase)"
         what actor (Array.length seq) expected)

let add_channel t ~src ~dst ~prod ~cons ?(init = 0) () =
  if not (mem_actor t src) then
    invalid_arg (Printf.sprintf "Csdf.add_channel: unknown actor %s" src);
  if not (mem_actor t dst) then
    invalid_arg (Printf.sprintf "Csdf.add_channel: unknown actor %s" dst);
  if init < 0 then invalid_arg "Csdf.add_channel: negative initial tokens";
  check_rate_seq "production" src (phases t src) prod;
  check_rate_seq "consumption" dst (phases t dst) cons;
  Digraph.add_edge t.dg src dst { prod; cons; init }

let actors t = Digraph.vertices t.dg

let channels t = Digraph.edges t.dg

let channel t id = Digraph.find_edge t.dg id

let digraph t = t.dg

let in_channels t a = Digraph.in_edges t.dg a

let out_channels t a = Digraph.out_edges t.dg a

let sum_rates seq = Array.fold_left Poly.add Poly.zero seq

let prod_total c = sum_rates c.prod

let cons_total c = sum_rates c.cons

let parameters t =
  List.sort_uniq String.compare
    (List.concat_map
       (fun (e : (string, channel) Digraph.edge) ->
         List.concat_map Poly.vars
           (Array.to_list e.label.prod @ Array.to_list e.label.cons))
       (channels t))

let rates l = Array.of_list (List.map Expr.parse_poly l)

let const_rates l = Array.of_list (List.map Poly.of_int l)

let pp_rate_seq ppf seq =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Poly.pp)
    (Array.to_list seq)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun a -> Format.fprintf ppf "actor %s (tau=%d)@," a (phases t a))
    (actors t);
  List.iter
    (fun (e : (string, channel) Digraph.edge) ->
      Format.fprintf ppf "channel e%d: %s %a -> %a %s (init=%d)@," e.id e.src
        pp_rate_seq e.label.prod pp_rate_seq e.label.cons e.dst e.label.init)
    (channels t);
  Format.fprintf ppf "@]"

let pp_dot ppf t =
  Digraph.pp_dot
    ~vertex_name:(fun v -> v)
    ~vertex_attrs:(fun _ -> [ ("shape", "box") ])
    ~edge_attrs:(fun (e : (string, channel) Digraph.edge) ->
      let label =
        Format.asprintf "e%d: %a -> %a%s" e.id pp_rate_seq e.label.prod
          pp_rate_seq e.label.cons
          (if e.label.init > 0 then Printf.sprintf " (%d)" e.label.init else "")
      in
      [ ("label", label) ])
    ~graph_name:"csdf" ppf t.dg
