module Digraph = Tpdf_graph.Digraph

type outcome =
  | Fits of { max_occupancy : (int * int) list }
  | Blocked of { full_channels : int list; stuck : string list }

let lower_bound conc id =
  let ch = Concrete.chan conc id in
  let amax = Array.fold_left max 0 in
  max ch.Concrete.init (max (amax ch.Concrete.prod) (amax ch.Concrete.cons))

let run conc ~capacities =
  let g = Concrete.graph conc in
  let actors = Graph.actors g in
  let tokens = Hashtbl.create 16 and max_occ = Hashtbl.create 16 in
  List.iter
    (fun (e : (string, Graph.channel) Digraph.edge) ->
      if capacities e.id < e.label.init then
        invalid_arg
          (Printf.sprintf
             "Bounded.run: capacity %d of e%d below its %d initial tokens"
             (capacities e.id) e.id e.label.init);
      Hashtbl.replace tokens e.id e.label.init;
      Hashtbl.replace max_occ e.id e.label.init)
    (Graph.channels g);
  let count = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace count a 0) actors;
  let phase a = Hashtbl.find count a mod Graph.phases g a in
  let input_ready a =
    List.for_all
      (fun (e : (string, Graph.channel) Digraph.edge) ->
        Hashtbl.find tokens e.id
        >= (Concrete.chan conc e.id).Concrete.cons.(phase a))
      (Graph.in_channels g a)
  in
  (* Output channels too full for this firing. *)
  let blocking_outputs a =
    List.filter_map
      (fun (e : (string, Graph.channel) Digraph.edge) ->
        let prod = (Concrete.chan conc e.id).Concrete.prod.(phase a) in
        if Hashtbl.find tokens e.id + prod > capacities e.id then Some e.id
        else None)
      (Graph.out_channels g a)
  in
  let fire a =
    let ph = phase a in
    List.iter
      (fun (e : (string, Graph.channel) Digraph.edge) ->
        Hashtbl.replace tokens e.id
          (Hashtbl.find tokens e.id - (Concrete.chan conc e.id).Concrete.cons.(ph)))
      (Graph.in_channels g a);
    List.iter
      (fun (e : (string, Graph.channel) Digraph.edge) ->
        let t = Hashtbl.find tokens e.id + (Concrete.chan conc e.id).Concrete.prod.(ph) in
        Hashtbl.replace tokens e.id t;
        if t > Hashtbl.find max_occ e.id then Hashtbl.replace max_occ e.id t)
      (Graph.out_channels g a);
    Hashtbl.replace count a (Hashtbl.find count a + 1)
  in
  let target a = Concrete.q conc a in
  let total = List.fold_left (fun acc a -> acc + target a) 0 actors in
  let fired = ref 0 and stalled = ref false in
  while (not !stalled) && !fired < total do
    let runnable =
      List.filter
        (fun a ->
          Hashtbl.find count a < target a
          && input_ready a
          && blocking_outputs a = [])
        actors
    in
    match runnable with
    | a :: _ ->
        fire a;
        incr fired
    | [] -> stalled := true
  done;
  if !fired = total then
    Fits
      {
        max_occupancy =
          List.map
            (fun (e : (string, Graph.channel) Digraph.edge) ->
              (e.id, Hashtbl.find max_occ e.id))
            (Graph.channels g);
      }
  else begin
    (* Channels whose fullness blocks an actor that is otherwise ready. *)
    let full =
      List.concat_map
        (fun a ->
          if Hashtbl.find count a < target a && input_ready a then
            blocking_outputs a
          else [])
        actors
    in
    Blocked
      {
        full_channels = List.sort_uniq compare full;
        stuck =
          List.filter (fun a -> Hashtbl.find count a < target a) actors;
      }
  end

type report = {
  capacities : (int * int) list;
  total : int;
  relaxations : int;
}

let minimize ?(max_steps = 10_000) conc =
  (* The graph must be live in the first place. *)
  (match Schedule.run conc with
  | Schedule.Complete _ -> ()
  | Schedule.Deadlock { stuck; _ } ->
      failwith
        (Printf.sprintf "Bounded.minimize: graph deadlocks even unbounded (%s)"
           (String.concat ", " stuck)));
  let g = Concrete.graph conc in
  let caps = Hashtbl.create 16 in
  List.iter
    (fun (e : (string, Graph.channel) Digraph.edge) ->
      Hashtbl.replace caps e.id (lower_bound conc e.id))
    (Graph.channels g);
  let relaxations = ref 0 in
  let rec search steps =
    if steps > max_steps then
      failwith "Bounded.minimize: relaxation budget exhausted";
    match run conc ~capacities:(Hashtbl.find caps) with
    | Fits _ -> ()
    | Blocked { full_channels; _ } ->
        let widen =
          match full_channels with
          | [] ->
              (* Fullness is not the blocker (should not happen for live
                 graphs); widen everything as a safety valve. *)
              List.map
                (fun (e : (string, Graph.channel) Digraph.edge) -> e.id)
                (Graph.channels g)
          | l -> l
        in
        List.iter
          (fun id ->
            incr relaxations;
            Hashtbl.replace caps id (Hashtbl.find caps id + 1))
          widen;
        search (steps + 1)
  in
  search 0;
  let capacities =
    List.map
      (fun (e : (string, Graph.channel) Digraph.edge) ->
        (e.id, Hashtbl.find caps e.id))
      (Graph.channels g)
  in
  {
    capacities;
    total = List.fold_left (fun acc (_, c) -> acc + c) 0 capacities;
    relaxations = !relaxations;
  }
