(** Ready-made CSDF graphs used in tests, examples and benchmarks. *)

val fig1 : unit -> Graph.t
(** The CSDF graph of Fig. 1 of the paper: three actors
    [a1 (τ=3), a2 (τ=2), a3 (τ=1)], channels
    [e1: a1 \[1,0,1\] → \[1,1\] a2],
    [e2: a2 \[0,2\] → \[1\] a3] with two initial tokens,
    [e3: a3 \[2\] → \[1,1,2\] a1].
    Repetition vector [\[3, 2, 2\]]; one valid schedule is
    [(a3)^2 (a1)^3 (a2)^2]. *)

val chain : ?rates:(int * int) list -> int -> Graph.t
(** [chain n] builds a linear SDF pipeline [s0 → s1 → … → s(n-1)].
    [rates] gives (production, consumption) per link, defaulting to (1,1);
    missing entries default to (1,1).  Useful for scheduling stress tests. *)

val producer_consumer : prod:int -> cons:int -> Graph.t
(** Two-actor SDF graph [P →(prod,cons)→ C]. *)

val parametric_chain : string list -> Graph.t
(** [parametric_chain \["p"; "q"\]] builds a chain where link [i] produces
    the i-th parameter per firing and consumes 1. *)

val deadlocked_cycle : unit -> Graph.t
(** A consistent but non-live two-actor cycle (no initial tokens). *)
