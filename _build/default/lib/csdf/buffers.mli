(** Buffer-size analysis for CSDF graphs.

    The minimum buffer capacity of a channel under a given sequential
    schedule is the maximum token occupancy it reaches during one iteration
    (including initial tokens).  The [Min_buffer] policy gives a good
    single-processor approximation of the minimum memory schedule; Fig. 8 of
    the paper compares these totals between the CSDF and TPDF versions of
    the OFDM application. *)

type report = {
  per_channel : (int * int) list;  (** channel id, capacity *)
  total : int;  (** sum over channels *)
}

val analyze : ?policy:Schedule.policy -> Concrete.t -> report
(** Default policy [Min_buffer].
    @raise Failure if the graph deadlocks (no schedule exists). *)

val pp : Format.formatter -> report -> unit
