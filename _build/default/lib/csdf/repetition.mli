(** Rate consistency and repetition vectors (Theorem 1 of the paper).

    For a connected (C)SDF graph the balance equations [Γ·r = 0] have a
    one-dimensional solution space; we compute the unique least positive
    solution by propagating production/consumption ratios along a spanning
    tree and verifying every remaining channel.  With parametric rates the
    raw solution lives in the field of rational functions ({!Tpdf_param.Frac});
    it is then normalized to the least vector of integer-coefficient
    polynomials, mirroring Example 2 of the paper
    ([r = \[1, p, p/2, p/2, p, p/2\]] → [\[2, 2p, p, p, 2p, p\]]). *)

open Tpdf_param

type t = {
  r : (string * Poly.t) list;
      (** normalized least positive solution of the balance equations,
          in actor order: number of {e cycles} per iteration *)
  q : (string * Poly.t) list;
      (** repetition vector: q_j = τ_j · r_j (number of {e firings}) *)
}

exception Inconsistent of string
(** The balance equations only admit the trivial solution; the payload
    explains which channel is unbalanced. *)

exception Disconnected
(** The graph is not weakly connected (no unique repetition vector). *)

val topology_matrix : Graph.t -> (int * (string * Poly.t) list) list
(** The matrix Γ of Theorem 1 / Equation (3), one row per channel: entry
    (e{_u}, a{_j}) is X{_j}{^u}(τ{_j}) when a{_j} produces on e{_u},
    −Y{_j}{^u}(τ{_j}) when it consumes, both when it does both (self-loop:
    the net total), and 0 (omitted) otherwise.  [Γ · r = 0] characterizes
    consistency. *)

val verify_against_matrix : Graph.t -> t -> bool
(** Check [Γ · r = 0] explicitly for a computed solution (used in tests to
    tie {!solve} back to Theorem 1). *)

val solve : Graph.t -> t
(** @raise Inconsistent / @raise Disconnected as above.
    @raise Invalid_argument on an empty graph or a zero total rate. *)

val is_consistent : Graph.t -> bool
(** [true] iff {!solve} succeeds. *)

val r_of : t -> string -> Poly.t
(** @raise Not_found on unknown actor. *)

val q_of : t -> string -> Poly.t
(** @raise Not_found on unknown actor. *)

val q_int : t -> Valuation.t -> (string * int) list
(** Evaluate the repetition vector under a valuation.
    @raise Invalid_argument if some entry is not a positive integer there. *)

val pp : Format.formatter -> t -> unit
