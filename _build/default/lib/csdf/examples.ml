open Tpdf_param

let fig1 () =
  let g = Graph.create () in
  Graph.add_actor g "a1" ~phases:3;
  Graph.add_actor g "a2" ~phases:2;
  Graph.add_actor g "a3" ~phases:1;
  let (_ : int) =
    Graph.add_channel g ~src:"a1" ~dst:"a2"
      ~prod:(Graph.const_rates [ 1; 0; 1 ])
      ~cons:(Graph.const_rates [ 1; 1 ])
      ()
  in
  let (_ : int) =
    Graph.add_channel g ~src:"a2" ~dst:"a3"
      ~prod:(Graph.const_rates [ 0; 2 ])
      ~cons:(Graph.const_rates [ 1 ])
      ~init:2 ()
  in
  let (_ : int) =
    Graph.add_channel g ~src:"a3" ~dst:"a1"
      ~prod:(Graph.const_rates [ 2 ])
      ~cons:(Graph.const_rates [ 1; 1; 2 ])
      ()
  in
  g

let chain ?(rates = []) n =
  if n < 2 then invalid_arg "Examples.chain: need at least two actors";
  let g = Graph.create () in
  for i = 0 to n - 1 do
    Graph.add_actor g (Printf.sprintf "s%d" i) ~phases:1
  done;
  for i = 0 to n - 2 do
    let p, c = match List.nth_opt rates i with Some pc -> pc | None -> (1, 1) in
    let (_ : int) =
      Graph.add_channel g
        ~src:(Printf.sprintf "s%d" i)
        ~dst:(Printf.sprintf "s%d" (i + 1))
        ~prod:(Graph.const_rates [ p ])
        ~cons:(Graph.const_rates [ c ])
        ()
    in
    ()
  done;
  g

let producer_consumer ~prod ~cons =
  let g = Graph.create () in
  Graph.add_actor g "P" ~phases:1;
  Graph.add_actor g "C" ~phases:1;
  let (_ : int) =
    Graph.add_channel g ~src:"P" ~dst:"C"
      ~prod:(Graph.const_rates [ prod ])
      ~cons:(Graph.const_rates [ cons ])
      ()
  in
  g

let parametric_chain params =
  let n = List.length params + 1 in
  if n < 2 then invalid_arg "Examples.parametric_chain: need parameters";
  let g = Graph.create () in
  for i = 0 to n - 1 do
    Graph.add_actor g (Printf.sprintf "s%d" i) ~phases:1
  done;
  List.iteri
    (fun i p ->
      let (_ : int) =
        Graph.add_channel g
          ~src:(Printf.sprintf "s%d" i)
          ~dst:(Printf.sprintf "s%d" (i + 1))
          ~prod:[| Poly.var p |]
          ~cons:(Graph.const_rates [ 1 ])
          ()
      in
      ())
    params;
  g

let deadlocked_cycle () =
  let g = Graph.create () in
  Graph.add_actor g "X" ~phases:1;
  Graph.add_actor g "Y" ~phases:1;
  let (_ : int) =
    Graph.add_channel g ~src:"X" ~dst:"Y"
      ~prod:(Graph.const_rates [ 1 ])
      ~cons:(Graph.const_rates [ 1 ])
      ()
  in
  let (_ : int) =
    Graph.add_channel g ~src:"Y" ~dst:"X"
      ~prod:(Graph.const_rates [ 1 ])
      ~cons:(Graph.const_rates [ 1 ])
      ()
  in
  g
