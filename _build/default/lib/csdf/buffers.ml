type report = { per_channel : (int * int) list; total : int }

let analyze ?(policy = Schedule.Min_buffer) c =
  match Schedule.run ~policy c with
  | Schedule.Deadlock { stuck; _ } ->
      failwith
        (Printf.sprintf "Buffers.analyze: graph deadlocks (stuck: %s)"
           (String.concat ", " stuck))
  | Schedule.Complete t ->
      {
        per_channel = t.max_occupancy;
        total = List.fold_left (fun acc (_, n) -> acc + n) 0 t.max_occupancy;
      }

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (id, n) -> Format.fprintf ppf "e%d: %d@," id n)
    r.per_channel;
  Format.fprintf ppf "total: %d@]" r.total
