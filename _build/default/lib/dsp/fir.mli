(** Finite-impulse-response filtering (the FM-radio benchmark of §V and
    StreamIt \[11\] is a bank of FIR stages). *)

val apply : float array -> float array -> float array
(** [apply taps signal] convolves with zero-padded history; output length
    equals input length.  @raise Invalid_argument on empty taps. *)

val lowpass : cutoff:float -> taps:int -> float array
(** Windowed-sinc (Hamming) low-pass design; [cutoff] is the normalized
    frequency in (0, 0.5).  @raise Invalid_argument on bad arguments. *)

val bandpass : low:float -> high:float -> taps:int -> float array
(** Band-pass as a difference of two low-pass designs;
    [0 < low < high < 0.5]. *)

val fm_demodulate : float array -> float array
(** Discrete FM discriminator: the scaled angle difference of consecutive
    samples of the analytic signal approximation.  Output length is
    [length - 1] (0 for inputs shorter than 2). *)
