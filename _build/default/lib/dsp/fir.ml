let apply taps signal =
  let k = Array.length taps in
  if k = 0 then invalid_arg "Fir.apply: empty taps";
  let n = Array.length signal in
  Array.init n (fun i ->
      let acc = ref 0.0 in
      for j = 0 to k - 1 do
        if i - j >= 0 then acc := !acc +. (taps.(j) *. signal.(i - j))
      done;
      !acc)

let lowpass ~cutoff ~taps =
  if cutoff <= 0.0 || cutoff >= 0.5 then
    invalid_arg "Fir.lowpass: cutoff must be in (0, 0.5)";
  if taps < 1 then invalid_arg "Fir.lowpass: need at least one tap";
  let m = float_of_int (taps - 1) in
  let h =
    Array.init taps (fun i ->
        let x = float_of_int i -. (m /. 2.0) in
        let sinc =
          if abs_float x < 1e-12 then 2.0 *. cutoff
          else sin (2.0 *. Float.pi *. cutoff *. x) /. (Float.pi *. x)
        in
        let hamming = 0.54 -. (0.46 *. cos (2.0 *. Float.pi *. float_of_int i /. m)) in
        sinc *. (if taps = 1 then 1.0 else hamming))
  in
  (* Normalize to unit DC gain. *)
  let sum = Array.fold_left ( +. ) 0.0 h in
  if abs_float sum > 1e-12 then Array.map (fun v -> v /. sum) h else h

let bandpass ~low ~high ~taps =
  if not (0.0 < low && low < high && high < 0.5) then
    invalid_arg "Fir.bandpass: need 0 < low < high < 0.5";
  let hi = lowpass ~cutoff:high ~taps in
  let lo = lowpass ~cutoff:low ~taps in
  Array.init taps (fun i -> hi.(i) -. lo.(i))

let fm_demodulate signal =
  let n = Array.length signal in
  if n < 2 then [||]
  else
    Array.init (n - 1) (fun i ->
        (* Approximate instantaneous frequency from sample-to-sample phase
           progression of the analytic pair (x[i], x[i+1]). *)
        let a = signal.(i) and b = signal.(i + 1) in
        atan2 (b -. a) (1.0 +. (a *. b)))
