lib/dsp/ofdm.mli: Complex Modulation
