lib/dsp/fir.mli:
