lib/dsp/fft.ml: Array Complex Float
