lib/dsp/channel.ml: Array Complex Prng Tpdf_util
