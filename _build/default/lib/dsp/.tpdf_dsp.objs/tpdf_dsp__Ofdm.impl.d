lib/dsp/ofdm.ml: Array Fft List Modulation
