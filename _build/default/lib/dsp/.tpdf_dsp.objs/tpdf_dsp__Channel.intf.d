lib/dsp/channel.mli: Complex Tpdf_util
