lib/dsp/modulation.ml: Array Complex Printf
