lib/dsp/modulation.mli: Complex
