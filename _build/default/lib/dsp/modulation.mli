(** Digital (de)modulation for the OFDM case study.

    The demodulator of Fig. 7 runs in a {e QPSK} (M = 2 bits/symbol) or
    {e 16-QAM} (M = 4 bits/symbol) configuration, selected at run time by
    the control actor.  Both use Gray-coded square constellations with
    hard-decision demapping. *)

type scheme = Qpsk | Qam16

val bits_per_symbol : scheme -> int
(** 2 for QPSK, 4 for 16-QAM — the paper's parameter M. *)

val scheme_of_m : int -> scheme
(** [scheme_of_m 2 = Qpsk], [scheme_of_m 4 = Qam16].
    @raise Invalid_argument otherwise. *)

val modulate : scheme -> int array -> Complex.t array
(** Map a bit array (values 0/1) to unit-average-power symbols.
    @raise Invalid_argument if the length is not a multiple of
    [bits_per_symbol] or bits are out of range. *)

val demodulate : scheme -> Complex.t array -> int array
(** Hard-decision demapping back to bits. *)

val bit_error_rate : sent:int array -> received:int array -> float
(** Fraction of differing positions.  @raise Invalid_argument on length
    mismatch or empty input. *)
