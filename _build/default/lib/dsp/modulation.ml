type scheme = Qpsk | Qam16

let bits_per_symbol = function Qpsk -> 2 | Qam16 -> 4

let scheme_of_m = function
  | 2 -> Qpsk
  | 4 -> Qam16
  | m -> invalid_arg (Printf.sprintf "Modulation.scheme_of_m: M=%d (expected 2 or 4)" m)

(* Gray-coded PAM levels for one I/Q axis. *)
let pam2 = [| -1.0; 1.0 |] (* bit 0 -> -1, bit 1 -> +1 *)

let pam4 = [| -3.0; -1.0; 3.0; 1.0 |] (* Gray: 00 01 10 11 -> -3 -1 +3 +1 *)

let check_bit b = if b <> 0 && b <> 1 then invalid_arg "Modulation: bit out of range"

let modulate scheme bits =
  let k = bits_per_symbol scheme in
  let n = Array.length bits in
  if n mod k <> 0 then
    invalid_arg "Modulation.modulate: bit count not a multiple of bits/symbol";
  Array.iter check_bit bits;
  let nsym = n / k in
  match scheme with
  | Qpsk ->
      (* one bit per axis, normalized to unit average power *)
      let s = 1.0 /. sqrt 2.0 in
      Array.init nsym (fun i ->
          {
            Complex.re = s *. pam2.(bits.((2 * i) + 0));
            im = s *. pam2.(bits.((2 * i) + 1));
          })
  | Qam16 ->
      (* two Gray bits per axis; E[|x|^2] = 10 for the raw grid *)
      let s = 1.0 /. sqrt 10.0 in
      Array.init nsym (fun i ->
          let idx_i = (2 * bits.((4 * i) + 0)) + bits.((4 * i) + 1) in
          let idx_q = (2 * bits.((4 * i) + 2)) + bits.((4 * i) + 3) in
          { Complex.re = s *. pam4.(idx_i); im = s *. pam4.(idx_q) })

let slice_pam2 v = if v >= 0.0 then 1 else 0

(* Inverse of the Gray map used in [pam4]. *)
let slice_pam4 v =
  if v < -2.0 then (0, 0)
  else if v < 0.0 then (0, 1)
  else if v < 2.0 then (1, 1)
  else (1, 0)

let demodulate scheme symbols =
  match scheme with
  | Qpsk ->
      let s = sqrt 2.0 in
      Array.concat
        (Array.to_list
           (Array.map
              (fun c ->
                [|
                  slice_pam2 (c.Complex.re *. s); slice_pam2 (c.Complex.im *. s);
                |])
              symbols))
  | Qam16 ->
      let s = sqrt 10.0 in
      Array.concat
        (Array.to_list
           (Array.map
              (fun c ->
                let b0, b1 = slice_pam4 (c.Complex.re *. s) in
                let b2, b3 = slice_pam4 (c.Complex.im *. s) in
                [| b0; b1; b2; b3 |])
              symbols))

let bit_error_rate ~sent ~received =
  let n = Array.length sent in
  if n = 0 || n <> Array.length received then
    invalid_arg "Modulation.bit_error_rate: length mismatch or empty";
  let errors = ref 0 in
  for i = 0 to n - 1 do
    if sent.(i) <> received.(i) then incr errors
  done;
  float_of_int !errors /. float_of_int n
