(** Channel impairments for end-to-end link simulation. *)

val awgn :
  Tpdf_util.Prng.t -> snr_db:float -> Complex.t array -> Complex.t array
(** Add white Gaussian noise at the given signal-to-noise ratio (measured
    against the empirical signal power). *)

val signal_power : Complex.t array -> float
(** Mean squared magnitude; 0 for the empty array. *)
