open Tpdf_util

let signal_power x =
  let n = Array.length x in
  if n = 0 then 0.0
  else
    Array.fold_left (fun acc c -> acc +. Complex.norm2 c) 0.0 x /. float_of_int n

let awgn rng ~snr_db x =
  let p = signal_power x in
  let noise_power = p /. (10.0 ** (snr_db /. 10.0)) in
  (* Noise is complex: half the power on each axis. *)
  let sigma = sqrt (noise_power /. 2.0) in
  Array.map
    (fun c ->
      {
        Complex.re = c.Complex.re +. (sigma *. Prng.gaussian rng);
        im = c.Complex.im +. (sigma *. Prng.gaussian rng);
      })
    x
