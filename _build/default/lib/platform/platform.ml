type comm_model = {
  local_latency_ms : float;
  remote_latency_ms : float;
  control_latency_ms : float;
}

type t = { clusters : int; pes_per_cluster : int; comm : comm_model }

let default_comm =
  { local_latency_ms = 0.001; remote_latency_ms = 0.01; control_latency_ms = 0.0005 }

let make ?(comm = default_comm) ~clusters ~pes_per_cluster () =
  if clusters < 1 || pes_per_cluster < 1 then
    invalid_arg "Platform.make: sizes must be positive";
  if
    comm.local_latency_ms < 0.0 || comm.remote_latency_ms < 0.0
    || comm.control_latency_ms < 0.0
  then invalid_arg "Platform.make: latencies must be non-negative";
  { clusters; pes_per_cluster; comm }

let mppa256 () = make ~clusters:16 ~pes_per_cluster:16 ()

let uniform ?comm n = make ?comm ~clusters:1 ~pes_per_cluster:n ()

let pe_count t = t.clusters * t.pes_per_cluster

let clusters t = t.clusters

let cluster_of t pe =
  if pe < 0 || pe >= pe_count t then
    invalid_arg (Printf.sprintf "Platform.cluster_of: bad PE id %d" pe);
  pe / t.pes_per_cluster

let comm t = t.comm

let latency_ms t ~src ~dst =
  if src = dst then 0.0
  else if cluster_of t src = cluster_of t dst then t.comm.local_latency_ms
  else t.comm.remote_latency_ms

let control_latency_ms t = t.comm.control_latency_ms

let pp ppf t =
  Format.fprintf ppf "%d cluster(s) x %d PE(s) (local %gms, remote %gms, ctrl %gms)"
    t.clusters t.pes_per_cluster t.comm.local_latency_ms t.comm.remote_latency_ms
    t.comm.control_latency_ms
