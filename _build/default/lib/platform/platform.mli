(** Abstract many-core execution platform.

    The paper targets the Kalray MPPA-256 (16 compute clusters of 16
    processing elements connected by a NoC).  Scheduling and simulation in
    this repository run against this abstraction: a set of processing
    elements grouped into clusters, with a two-level communication cost
    (cheap inside a cluster, more expensive across).  Absolute numbers are
    configurable; the defaults approximate the MPPA's published figures
    closely enough for shape-level comparisons. *)

type comm_model = {
  local_latency_ms : float;  (** producer and consumer on the same cluster *)
  remote_latency_ms : float;  (** across clusters, over the NoC *)
  control_latency_ms : float;
      (** control-token delivery; the scheduler accounts for it so the
          system behaves “as if it was instantaneous” (§III-D) *)
}

type t

val make : ?comm:comm_model -> clusters:int -> pes_per_cluster:int -> unit -> t
(** @raise Invalid_argument on non-positive sizes. *)

val mppa256 : unit -> t
(** 16 clusters × 16 PEs, MPPA-256-like latencies. *)

val uniform : ?comm:comm_model -> int -> t
(** [uniform n]: a single cluster of [n] PEs. *)

val default_comm : comm_model

val pe_count : t -> int
val clusters : t -> int
val cluster_of : t -> int -> int
(** Cluster of a PE id.  @raise Invalid_argument on bad ids. *)

val comm : t -> comm_model

val latency_ms : t -> src:int -> dst:int -> float
(** Data-token latency between two PEs; 0 on the same PE. *)

val control_latency_ms : t -> float

val pp : Format.formatter -> t -> unit
