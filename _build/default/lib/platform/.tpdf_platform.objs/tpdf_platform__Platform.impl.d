lib/platform/platform.ml: Format Printf
