open Tpdf_core
open Tpdf_sim
open Tpdf_image
open Tpdf_param
module Csdf = Tpdf_csdf

type token = Frame of Image.t | Edges of Edge.detector * Image.t | Sig

type ids = {
  read_dup : int;
  dup_det : (Edge.detector * int) list;
  det_tran : (Edge.detector * int) list;
  tran_write : int;
  clk_tran : int;
}

let default_detectors = [ Edge.Quick_mask; Edge.Sobel; Edge.Prewitt; Edge.Canny ]

let one = Csdf.Graph.const_rates [ 1 ]

let graph ?(detectors = default_detectors) ?(deadline_ms = 500.0) () =
  if detectors = [] then invalid_arg "Edge_app.graph: need at least one detector";
  let g = Graph.create () in
  Graph.add_kernel g "IRead";
  Graph.add_kernel g ~kind:Graph.Select_duplicate "IDuplicate";
  List.iter (fun d -> Graph.add_kernel g (Edge.name d)) detectors;
  Graph.add_kernel g ~kind:Graph.Transaction "Trans";
  Graph.add_kernel g "IWrite";
  Graph.add_control g ~clock_period_ms:deadline_ms "Clock";
  let read_dup =
    Graph.add_channel g ~src:"IRead" ~dst:"IDuplicate" ~prod:one ~cons:one ()
  in
  let dup_det =
    List.map
      (fun d ->
        (d, Graph.add_channel g ~src:"IDuplicate" ~dst:(Edge.name d) ~prod:one ~cons:one ()))
      detectors
  in
  let det_tran =
    List.map
      (fun d ->
        ( d,
          Graph.add_channel g ~src:(Edge.name d) ~dst:"Trans" ~prod:one
            ~cons:one ~priority:(Edge.quality d) () ))
      detectors
  in
  let tran_write =
    Graph.add_channel g ~src:"Trans" ~dst:"IWrite" ~prod:one ~cons:one ()
  in
  let clk_tran =
    Graph.add_control_channel g ~src:"Clock" ~dst:"Trans" ~prod:one ~cons:one ()
  in
  Graph.set_modes g "Trans"
    [ Mode.make ~inputs:Mode.Highest_priority_available "deadline" ];
  (g, { read_dup; dup_det; det_tran; tran_write; clk_tran })

type frame_result = {
  winner : Edge.detector;
  at_ms : float;
  edge_pixels : int;
}

type report = { frames : frame_result list; stats : Engine.stats }

let read_overhead_ms = 10.0
let duplicate_overhead_ms = 1.0

let run ?(detectors = default_detectors) ?(deadline_ms = 500.0) ?(size = 512)
    ?(frames = 3) ?(timing = `Model) ?(seed = 7) () =
  let g, ids = graph ~detectors ~deadline_ms () in
  let results = ref [] in
  (* Measured detector durations, keyed by (detector, firing index). *)
  let measured : (string * int, float) Hashtbl.t = Hashtbl.create 16 in
  let detector_behavior d =
    let work ctx =
      let img =
        match ctx.Behavior.inputs with
        | [ (_, [ Token.Data (Frame img) ]) ] -> img
        | _ -> failwith "detector expects one frame"
      in
      let t0 = Sys.time () in
      let edges = Edge.run d img in
      let elapsed = (Sys.time () -. t0) *. 1000.0 in
      Hashtbl.replace measured (Edge.name d, ctx.Behavior.index) elapsed;
      List.map
        (fun (ch, rate) ->
          (ch, List.init rate (fun _ -> Token.Data (Edges (d, edges)))))
        ctx.Behavior.out_rates
    in
    let duration_ms ctx =
      match timing with
      | `Model ->
          Edge.model_duration_ms d ~width:size ~height:size
      | `Measured -> (
          match Hashtbl.find_opt measured (Edge.name d, ctx.Behavior.index) with
          | Some ms -> ms
          | None -> Edge.model_duration_ms d ~width:size ~height:size)
    in
    Behavior.make ~duration_ms work
  in
  let behaviors =
    [
      ( "IRead",
        Behavior.make
          ~duration_ms:(Behavior.const_duration read_overhead_ms)
          (fun ctx ->
            let img =
              Synthetic.scene ~seed:(seed + ctx.Behavior.index) ~width:size
                ~height:size ()
            in
            List.map
              (fun (ch, rate) ->
                (ch, List.init rate (fun _ -> Token.Data (Frame img))))
              ctx.Behavior.out_rates) );
      ( "IDuplicate",
        Behavior.make
          ~duration_ms:(Behavior.const_duration duplicate_overhead_ms)
          (fun ctx ->
            let img =
              match ctx.Behavior.inputs with
              | [ (_, [ Token.Data (Frame img) ]) ] -> img
              | _ -> failwith "IDuplicate expects one frame"
            in
            List.map
              (fun (ch, rate) ->
                (ch, List.init rate (fun _ -> Token.Data (Frame img))))
              ctx.Behavior.out_rates) );
      ( "Trans",
        Behavior.make
          ~duration_ms:(Behavior.const_duration 0.1)
          (fun ctx ->
            match ctx.Behavior.inputs with
            | [ (_, [ (Token.Data (Edges _) as tok) ]) ] ->
                List.map
                  (fun (ch, rate) -> (ch, List.init rate (fun _ -> tok)))
                  ctx.Behavior.out_rates
            | _ -> failwith "Trans expects exactly one selected result") );
      ( "IWrite",
        Behavior.sink
          ~duration_ms:(Behavior.const_duration 0.1)
          (fun ctx ->
            match ctx.Behavior.inputs with
            | [ (_, [ Token.Data (Edges (d, img)) ]) ] ->
                results :=
                  {
                    winner = d;
                    at_ms = ctx.Behavior.now_ms;
                    edge_pixels = Image.nonzero_count img;
                  }
                  :: !results
            | _ -> failwith "IWrite expects one edge map") );
      ("Clock", Behavior.emit_mode (fun _ -> "deadline"));
    ]
    @ List.map (fun d -> (Edge.name d, detector_behavior d)) detectors
  in
  ignore ids;
  let eng =
    Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~default:Sig ()
  in
  let stats = Engine.run ~iterations:frames eng in
  { frames = List.rev !results; stats }

let winner_at_deadline ?(detectors = default_detectors) ~deadline_ms ~size () =
  let overhead = read_overhead_ms +. duplicate_overhead_ms in
  let fits d =
    overhead +. Edge.model_duration_ms d ~width:size ~height:size <= deadline_ms
  in
  let fitting = List.filter fits detectors in
  match fitting with
  | [] ->
      List.fold_left
        (fun best d ->
          if
            Edge.model_duration_ms d ~width:size ~height:size
            < Edge.model_duration_ms best ~width:size ~height:size
          then d
          else best)
        (List.hd detectors) (List.tl detectors)
  | _ ->
      List.fold_left
        (fun best d -> if Edge.quality d > Edge.quality best then d else best)
        (List.hd fitting) (List.tl fitting)
