open Tpdf_core
open Tpdf_sim
open Tpdf_param
open Tpdf_image
module Csdf = Tpdf_csdf

type estimator = Zero_mv | Tss | Full_search

let estimator_name = function
  | Zero_mv -> "zero_mv"
  | Tss -> "tss"
  | Full_search -> "full_search"

let quality_rank = function Zero_mv -> 1 | Tss -> 2 | Full_search -> 3

let all_estimators = [ Zero_mv; Tss; Full_search ]

let kind_of = function Zero_mv -> `Zero | Tss -> `Tss | Full_search -> `Full

(* ~25 ns per SAD pixel operation, in milliseconds. *)
let model_duration_ms est ~size ~block ~range =
  let blocks = size / block * (size / block) in
  let ops = Motion.estimate_cost_ops (kind_of est) ~block ~range * blocks in
  float_of_int ops *. 25.0e-6

let estimate est ~block ~range ~reference current =
  match est with
  | Zero_mv -> Motion.zero_motion ~block ~reference current
  | Tss -> Motion.three_step_search ~block ~range ~reference current
  | Full_search -> Motion.full_search ~block ~range ~reference current

type token =
  | Pair of Image.t * Image.t  (** reference, current *)
  | Field of estimator * Motion.field * Image.t * Image.t
  | Encoded of estimator * float
  | Sig

let one = Csdf.Graph.const_rates [ 1 ]

let graph ?(deadline_ms = 40.0) () =
  let g = Graph.create () in
  Graph.add_kernel g "VRead";
  Graph.add_kernel g ~kind:Graph.Select_duplicate "MDup";
  List.iter (fun e -> Graph.add_kernel g (estimator_name e)) all_estimators;
  Graph.add_kernel g ~kind:Graph.Transaction "MTrans";
  Graph.add_kernel g "Encode";
  Graph.add_kernel g "VWrite";
  Graph.add_control g ~clock_period_ms:deadline_ms "QClock";
  ignore (Graph.add_channel g ~src:"VRead" ~dst:"MDup" ~prod:one ~cons:one ());
  List.iter
    (fun e ->
      ignore
        (Graph.add_channel g ~src:"MDup" ~dst:(estimator_name e) ~prod:one
           ~cons:one ()))
    all_estimators;
  List.iter
    (fun e ->
      ignore
        (Graph.add_channel g ~src:(estimator_name e) ~dst:"MTrans" ~prod:one
           ~cons:one ~priority:(quality_rank e) ()))
    all_estimators;
  ignore (Graph.add_channel g ~src:"MTrans" ~dst:"Encode" ~prod:one ~cons:one ());
  ignore (Graph.add_channel g ~src:"Encode" ~dst:"VWrite" ~prod:one ~cons:one ());
  ignore
    (Graph.add_control_channel g ~src:"QClock" ~dst:"MTrans" ~prod:one ~cons:one ());
  Graph.set_modes g "MTrans"
    [ Mode.make ~inputs:Mode.Highest_priority_available "deadline" ];
  g

type frame_result = { chosen : estimator; at_ms : float; residual : float }

type report = { frames : frame_result list; stats : Engine.stats }

let synthetic_pair ~seed ~size index =
  let base = Synthetic.scene ~seed ~noise:0.0 ~width:size ~height:size () in
  (* the scene translates a few pixels per frame *)
  let shift_x = 2 + (index mod 3) and shift_y = 1 + (index mod 2) in
  let current =
    Image.init ~width:size ~height:size (fun x y ->
        Image.get base (x - shift_x) (y - shift_y))
  in
  (base, current)

let run ?(size = 128) ?(block = 16) ?(range = 7) ?(frames = 3)
    ?(deadline_ms = 40.0) ?(seed = 3) () =
  let g = graph ~deadline_ms () in
  let results = ref [] in
  let detector_behavior est =
    Behavior.make
      ~duration_ms:(fun _ -> model_duration_ms est ~size ~block ~range)
      (fun ctx ->
        match ctx.Behavior.inputs with
        | [ (_, [ Token.Data (Pair (reference, current)) ]) ] ->
            let field = estimate est ~block ~range ~reference current in
            List.map
              (fun (ch, rate) ->
                ( ch,
                  List.init rate (fun _ ->
                      Token.Data (Field (est, field, reference, current))) ))
              ctx.Behavior.out_rates
        | _ -> failwith "estimator expects one frame pair")
  in
  let behaviors =
    [
      ( "VRead",
        Behavior.make
          ~duration_ms:(Behavior.const_duration 2.0)
          (fun ctx ->
            let reference, current =
              synthetic_pair ~seed ~size ctx.Behavior.index
            in
            List.map
              (fun (ch, rate) ->
                (ch, List.init rate (fun _ -> Token.Data (Pair (reference, current)))))
              ctx.Behavior.out_rates) );
      ( "MDup",
        Behavior.make
          ~duration_ms:(Behavior.const_duration 0.2)
          (fun ctx ->
            match ctx.Behavior.inputs with
            | [ (_, [ tok ]) ] ->
                List.map
                  (fun (ch, rate) -> (ch, List.init rate (fun _ -> tok)))
                  ctx.Behavior.out_rates
            | _ -> failwith "MDup expects one token") );
      ( "MTrans",
        Patterns.forward_selected ~duration_ms:(Behavior.const_duration 0.1) () );
      ( "Encode",
        Behavior.make
          ~duration_ms:(Behavior.const_duration 1.5)
          (fun ctx ->
            match ctx.Behavior.inputs with
            | [ (_, [ Token.Data (Field (est, field, reference, current)) ]) ]
              ->
                let prediction = Motion.compensate ~reference field in
                let residual = Motion.residual_energy ~current ~prediction in
                List.map
                  (fun (ch, rate) ->
                    (ch, List.init rate (fun _ -> Token.Data (Encoded (est, residual)))))
                  ctx.Behavior.out_rates
            | _ -> failwith "Encode expects one motion field") );
      ( "VWrite",
        Behavior.sink (fun ctx ->
            match ctx.Behavior.inputs with
            | [ (_, [ Token.Data (Encoded (est, residual)) ]) ] ->
                results :=
                  { chosen = est; at_ms = ctx.Behavior.now_ms; residual }
                  :: !results
            | _ -> failwith "VWrite expects one encoded frame") );
      ("QClock", Behavior.emit_mode (fun _ -> "deadline"));
    ]
    @ List.map (fun e -> (estimator_name e, detector_behavior e)) all_estimators
  in
  let eng =
    Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~default:Sig ()
  in
  let stats = Engine.run ~iterations:frames eng in
  { frames = List.rev !results; stats }

let residual_by_estimator ?(size = 128) ?(block = 16) ?(range = 7) ?(seed = 3)
    () =
  let reference, current = synthetic_pair ~seed ~size 0 in
  List.map
    (fun est ->
      let field = estimate est ~block ~range ~reference current in
      let prediction = Motion.compensate ~reference field in
      (est, Motion.residual_energy ~current ~prediction))
    all_estimators
