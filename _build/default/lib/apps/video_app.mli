(** A video-encoder front end with a quality-threshold Transaction (§V).

    The paper reports improving an AVC encoder by letting a Transaction
    kernel “choose dynamically the highest quality video available within
    real-time constraints”.  This application reproduces that pattern on
    the motion-estimation stage: three estimators of increasing cost and
    quality (zero-motion, three-step search, full search) race on every
    frame, and a clock-driven Transaction selects the best field available
    at the deadline; the encoder stage then computes the residual of the
    chosen prediction. *)

type estimator = Zero_mv | Tss | Full_search

val estimator_name : estimator -> string
val quality_rank : estimator -> int
(** Full > TSS > Zero. *)

val model_duration_ms :
  estimator -> size:int -> block:int -> range:int -> float
(** Cost model proportional to SAD operations. *)

type frame_result = {
  chosen : estimator;
  at_ms : float;
  residual : float;  (** mean-squared prediction error of the chosen field *)
}

type report = {
  frames : frame_result list;
  stats : Tpdf_sim.Engine.stats;
}

val graph : ?deadline_ms:float -> unit -> Tpdf_core.Graph.t
(** VRead → MDup → {zero_mv, tss, full_search} → MTrans (clock-fired) →
    Encode → VWrite. *)

val run :
  ?size:int ->
  ?block:int ->
  ?range:int ->
  ?frames:int ->
  ?deadline_ms:float ->
  ?seed:int ->
  unit ->
  report
(** Synthetic video (a scene translating a few pixels per frame plus
    noise); defaults: 128×128, block 16, range 7, 3 frames, 40 ms
    deadline, model timing. *)

val residual_by_estimator :
  ?size:int -> ?block:int -> ?range:int -> ?seed:int -> unit ->
  (estimator * float) list
(** Run each estimator directly on one synthetic frame pair and report its
    residual — the quality ordering Full ≤ TSS ≤ Zero must hold. *)
