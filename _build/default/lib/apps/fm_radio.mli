(** StreamIt-style FM radio with a reconfigurable equalizer (§V).

    The paper argues that StreamIt benchmarks such as FM Radio perform
    redundant calculations that dynamic-topology models avoid: the
    equalizer is a bank of band-pass branches, and depending on the
    listening profile only a subset contributes to the output.  A CSDF
    implementation must compute every band each iteration; the TPDF version
    steers a Select-duplicate / Transaction pair with a control actor and
    only the selected bands fire.

    Pipeline: SRC → LPF → DEMOD → SPLIT → band{_0} … band{_n-1} → COMB →
    SNK, with control actor CTL driving SPLIT and COMB. *)

open Tpdf_param

type profile = Speech | Music
(** Speech uses the lower half of the bands, Music all of them. *)

val profile_mode : profile -> string
val bands_for : profile -> total:int -> int list
(** Indices of the active bands. *)

val graph : ?bands:int -> unit -> Tpdf_core.Graph.t
(** TPDF graph with the given number of equalizer bands (default 8). *)

val csdf_graph : ?bands:int -> unit -> Tpdf_core.Graph.t
(** Static baseline: no control actor, all bands always computed. *)

type comparison = {
  profile : profile;
  bands : int;
  tpdf_band_firings : int;  (** equalizer-band firings per iteration *)
  csdf_band_firings : int;
  tpdf_makespan_ms : float;  (** list-scheduled on the same platform *)
  csdf_makespan_ms : float;
  tpdf_buffers : int;
  csdf_buffers : int;
}

val compare_profiles :
  ?bands:int -> ?pes:int -> profile -> comparison
(** Schedules one iteration of both variants on a [pes]-PE platform
    (default 4) with a band-firing cost model, and compares the work, the
    makespan and the buffer totals.  In Speech profile TPDF skips half the
    bands; in Music profile the two coincide. *)

type audio_report = { samples : int; output_power : float; firings : (string * int) list }

val run_audio :
  ?seed:int -> ?block:int -> profile -> iterations:int -> audio_report
(** Functional run: synthesize an FM-modulated multi-tone signal, push it
    through the TPDF graph and report the demodulated, equalized output
    power (must be positive — the pipeline really processes audio). *)

val valuation : Valuation.t
(** The (empty) valuation — the FM graph has constant rates. *)
