lib/apps/edge_app.mli: Edge Image Tpdf_core Tpdf_image Tpdf_sim
