lib/apps/edge_app.ml: Behavior Edge Engine Graph Hashtbl Image List Mode Synthetic Sys Token Tpdf_core Tpdf_csdf Tpdf_image Tpdf_param Tpdf_sim Valuation
