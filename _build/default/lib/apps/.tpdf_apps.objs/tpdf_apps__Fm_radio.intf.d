lib/apps/fm_radio.mli: Tpdf_core Tpdf_param Valuation
