lib/apps/ofdm_app.ml: Array Behavior Buffers Channel Complex Engine Fft Graph List Mode Modulation Ofdm Prng Token Tpdf_core Tpdf_csdf Tpdf_dsp Tpdf_param Tpdf_sim Tpdf_util Valuation
