lib/apps/ofdm_app.mli: Complex Tpdf_core Tpdf_csdf Tpdf_param Valuation
