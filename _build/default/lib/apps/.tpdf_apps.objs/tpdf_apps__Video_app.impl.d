lib/apps/video_app.ml: Behavior Engine Graph Image List Mode Motion Patterns Synthetic Token Tpdf_core Tpdf_csdf Tpdf_image Tpdf_param Tpdf_sim Valuation
