lib/apps/video_app.mli: Tpdf_core Tpdf_sim
