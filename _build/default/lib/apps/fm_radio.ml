open Tpdf_core
open Tpdf_sim
open Tpdf_param
open Tpdf_dsp
module Csdf = Tpdf_csdf
module Platform = Tpdf_platform.Platform
module Sched = Tpdf_sched

type profile = Speech | Music

let profile_mode = function Speech -> "speech" | Music -> "music"

let bands_for profile ~total =
  match profile with
  | Music -> List.init total (fun i -> i)
  | Speech -> List.init (max 1 (total / 2)) (fun i -> i)

let band_name i = Printf.sprintf "band%d" i

let one = Csdf.Graph.const_rates [ 1 ]

let build ~with_control ~bands =
  if bands < 2 then invalid_arg "Fm_radio.graph: need at least two bands";
  let g = Graph.create () in
  Graph.add_kernel g "SRC";
  Graph.add_kernel g "LPF";
  Graph.add_kernel g "DEMOD";
  Graph.add_kernel g ~kind:Graph.Select_duplicate "SPLIT";
  for i = 0 to bands - 1 do
    Graph.add_kernel g (band_name i)
  done;
  Graph.add_kernel g ~kind:Graph.Transaction "COMB";
  Graph.add_kernel g "SNK";
  ignore (Graph.add_channel g ~src:"SRC" ~dst:"LPF" ~prod:one ~cons:one ());
  ignore (Graph.add_channel g ~src:"LPF" ~dst:"DEMOD" ~prod:one ~cons:one ());
  ignore (Graph.add_channel g ~src:"DEMOD" ~dst:"SPLIT" ~prod:one ~cons:one ());
  let split_band =
    List.init bands (fun i ->
        Graph.add_channel g ~src:"SPLIT" ~dst:(band_name i) ~prod:one ~cons:one ())
  in
  let band_comb =
    List.init bands (fun i ->
        Graph.add_channel g ~src:(band_name i) ~dst:"COMB" ~prod:one ~cons:one ())
  in
  ignore (Graph.add_channel g ~src:"COMB" ~dst:"SNK" ~prod:one ~cons:one ());
  if with_control then begin
    Graph.add_control g "CTL";
    ignore (Graph.add_channel g ~src:"SRC" ~dst:"CTL" ~prod:one ~cons:one ());
    ignore (Graph.add_control_channel g ~src:"CTL" ~dst:"SPLIT" ~prod:one ~cons:one ());
    ignore (Graph.add_control_channel g ~src:"CTL" ~dst:"COMB" ~prod:one ~cons:one ());
    let low = bands_for Speech ~total:bands in
    Graph.set_modes g "SPLIT"
      [
        Mode.make
          ~outputs:(Mode.Output_subset (List.map (List.nth split_band) low))
          "speech";
        Mode.make ~outputs:Mode.All_outputs "music";
      ];
    Graph.set_modes g "COMB"
      [
        Mode.make
          ~inputs:(Mode.Input_subset (List.map (List.nth band_comb) low))
          "speech";
        Mode.make ~inputs:Mode.All_inputs "music";
      ]
  end;
  g

let graph ?(bands = 8) () = build ~with_control:true ~bands

let csdf_graph ?(bands = 8) () = build ~with_control:false ~bands

let valuation = Valuation.empty

type comparison = {
  profile : profile;
  bands : int;
  tpdf_band_firings : int;
  csdf_band_firings : int;
  tpdf_makespan_ms : float;
  csdf_makespan_ms : float;
  tpdf_buffers : int;
  csdf_buffers : int;
}

let is_band a =
  String.length a > 4 && String.sub a 0 4 = "band"

let firing_cost (n : Sched.Canonical_period.node) =
  match n.Sched.Canonical_period.actor with
  | "SRC" -> 0.5
  | "LPF" -> 1.5
  | "DEMOD" -> 1.0
  | "SPLIT" -> 0.2
  | "COMB" -> 0.3
  | "SNK" -> 0.1
  | "CTL" -> 0.05
  | a when is_band a -> 2.0
  | _ -> 1.0

let compare_profiles ?(bands = 8) ?(pes = 4) profile =
  let active = bands_for profile ~total:bands in
  let active_names = List.map band_name active in
  let tg = graph ~bands () in
  let cg = csdf_graph ~bands () in
  let platform = Platform.uniform pes in
  let mk_sched g ~include_actor =
    let conc = Csdf.Concrete.make (Graph.skeleton g) Valuation.empty in
    let period = Sched.Canonical_period.build ~include_actor conc in
    let s =
      Sched.List_scheduler.run ~durations:firing_cost ~reserve_control_pe:false
        ~graph:g period platform
    in
    let band_firings =
      List.length
        (List.filter
           (fun n -> is_band n.Sched.Canonical_period.actor)
           (Sched.Canonical_period.nodes period))
    in
    (band_firings, s.Sched.List_scheduler.makespan_ms)
  in
  let tpdf_band_firings, tpdf_makespan_ms =
    mk_sched tg ~include_actor:(fun a ->
        (not (is_band a)) || List.mem a active_names)
  in
  let csdf_band_firings, csdf_makespan_ms =
    mk_sched cg ~include_actor:(fun _ -> true)
  in
  let mode = profile_mode profile in
  let scenario = [ ("SPLIT", mode); ("COMB", mode) ] in
  let tpdf_buffers =
    (Buffers.analyze tg Valuation.empty ~scenario).Csdf.Buffers.total
  in
  let csdf_buffers =
    (Buffers.csdf_equivalent cg Valuation.empty).Csdf.Buffers.total
  in
  {
    profile;
    bands;
    tpdf_band_firings;
    csdf_band_firings;
    tpdf_makespan_ms;
    csdf_makespan_ms;
    tpdf_buffers;
    csdf_buffers;
  }

(* ------------------------------------------------------------------ *)
(* Functional audio run                                                *)
(* ------------------------------------------------------------------ *)

type audio_report = {
  samples : int;
  output_power : float;
  firings : (string * int) list;
}

type tok = Block of float array | Sig

let run_audio ?(seed = 5) ?(block = 256) profile ~iterations =
  let bands = 8 in
  let g = graph ~bands () in
  let active = bands_for profile ~total:bands in
  let rng = Tpdf_util.Prng.create seed in
  (* FM-modulate a two-tone audio signal with a little noise. *)
  let total = iterations * block in
  let audio t =
    sin (2.0 *. Float.pi *. 0.010 *. float_of_int t)
    +. (0.5 *. sin (2.0 *. Float.pi *. 0.027 *. float_of_int t))
  in
  let phase = ref 0.0 in
  let signal =
    Array.init total (fun t ->
        phase := !phase +. (2.0 *. Float.pi *. (0.2 +. (0.05 *. audio t)));
        cos !phase +. (0.01 *. Tpdf_util.Prng.gaussian rng))
  in
  let lp_taps = Fir.lowpass ~cutoff:0.24 ~taps:31 in
  let band_taps =
    Array.init bands (fun i ->
        let lo = 0.01 +. (0.48 *. float_of_int i /. float_of_int bands) in
        let hi = 0.01 +. (0.48 *. float_of_int (i + 1) /. float_of_int bands) in
        Fir.bandpass ~low:lo ~high:(Float.min hi 0.49) ~taps:31)
  in
  let power = ref 0.0 and count = ref 0 in
  let block_of ctx =
    match ctx.Behavior.inputs with
    | [ (_, [ Token.Data (Block b) ]) ] -> b
    | _ -> failwith "fm: expected one block"
  in
  let emit ctx b =
    List.filter_map
      (fun (ch, rate) ->
        if rate = 0 then None
        else begin
          assert (rate = 1);
          Some (ch, [ Token.Data (Block b) ])
        end)
      ctx.Behavior.out_rates
  in
  let behaviors =
    [
      ( "SRC",
        Behavior.make (fun ctx ->
            let i = ctx.Behavior.index in
            let b = Array.sub signal (i * block) block in
            List.map
              (fun (ch, rate) ->
                assert (rate = 1);
                (* the CTL notification channel carries a Sig, the audio
                   path the sample block *)
                let e = Csdf.Graph.channel (Graph.skeleton g) ch in
                if e.Tpdf_graph.Digraph.dst = "CTL" then (ch, [ Token.Data Sig ])
                else (ch, [ Token.Data (Block b) ]))
              ctx.Behavior.out_rates) );
      ("CTL", Behavior.emit_mode (fun _ -> profile_mode profile));
      ("LPF", Behavior.make (fun ctx -> emit ctx (Fir.apply lp_taps (block_of ctx))));
      ( "DEMOD",
        Behavior.make (fun ctx ->
            let d = Fir.fm_demodulate (block_of ctx) in
            (* keep the block length stable *)
            let out =
              if Array.length d = block then d
              else
                Array.init block (fun i ->
                    if i < Array.length d then d.(i) else 0.0)
            in
            emit ctx out) );
      ( "SPLIT",
        Behavior.make (fun ctx ->
            let b = block_of ctx in
            emit ctx b) );
      ( "COMB",
        Behavior.make (fun ctx ->
            let sum = Array.make block 0.0 in
            List.iter
              (fun (_, toks) ->
                List.iter
                  (fun t ->
                    match t with
                    | Token.Data (Block b) ->
                        Array.iteri (fun i v -> sum.(i) <- sum.(i) +. v) b
                    | _ -> failwith "COMB: bad token")
                  toks)
              ctx.Behavior.inputs;
            emit ctx sum) );
      ( "SNK",
        Behavior.sink (fun ctx ->
            match block_of ctx with
            | b ->
                Array.iter
                  (fun v ->
                    power := !power +. (v *. v);
                    incr count)
                  b) );
    ]
    @ List.init bands (fun i ->
          ( band_name i,
            Behavior.make (fun ctx ->
                emit ctx (Fir.apply band_taps.(i) (block_of ctx))) ))
  in
  let suppressed =
    List.filter (fun i -> not (List.mem i active)) (List.init bands (fun i -> i))
  in
  let targets = List.map (fun i -> (band_name i, 0)) suppressed in
  let eng =
    Engine.create ~graph:g ~valuation:Valuation.empty ~behaviors ~default:Sig ()
  in
  let stats = Engine.run ~iterations ~targets eng in
  {
    samples = !count;
    output_power = (if !count = 0 then 0.0 else !power /. float_of_int !count);
    firings = stats.Engine.firings;
  }
