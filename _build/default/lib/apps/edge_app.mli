(** The edge-detection application of §IV-A (Fig. 6).

    [IRead] reads frames and [IDuplicate] copies each frame to several edge
    detectors running in parallel; a {e Transaction} box, fired by a clock
    control actor every [deadline_ms], selects the best result available at
    the deadline (priority order Canny > Kirsch > Prewitt > Sobel > Quick
    Mask) and forwards it to [IWrite].  An average-quality result at the
    right time beats an excellent one that arrives late — the
    time-dependent decision CSDF cannot express. *)

open Tpdf_image

type token = Frame of Image.t | Edges of Edge.detector * Image.t | Sig

type ids = {
  read_dup : int;
  dup_det : (Edge.detector * int) list;  (** IDuplicate → detector *)
  det_tran : (Edge.detector * int) list;  (** detector → Transaction *)
  tran_write : int;
  clk_tran : int;  (** control channel *)
}

val graph :
  ?detectors:Edge.detector list -> ?deadline_ms:float -> unit -> Tpdf_core.Graph.t * ids
(** Default detectors: Quick Mask, Sobel, Prewitt, Canny (the four of
    Fig. 6); default deadline 500 ms. *)

type frame_result = {
  winner : Edge.detector;
  at_ms : float;  (** deadline tick at which it was selected *)
  edge_pixels : int;  (** non-zero pixels of the selected map *)
}

type report = {
  frames : frame_result list;
  stats : Tpdf_sim.Engine.stats;
}

(* Timing model for detector firings:
   - [`Model] uses {!Tpdf_image.Edge.model_duration_ms} (deterministic, the
     paper-calibrated costs);
   - [`Measured] runs the detector and uses its real wall-clock time. *)
val run :
  ?detectors:Edge.detector list ->
  ?deadline_ms:float ->
  ?size:int ->
  ?frames:int ->
  ?timing:[ `Model | `Measured ] ->
  ?seed:int ->
  unit ->
  report
(** Defaults: 512×512 synthetic frames, 3 frames, [`Model] timing,
    deadline 500 ms.  Detectors compute real edge maps in both timing
    modes. *)

val winner_at_deadline :
  ?detectors:Edge.detector list -> deadline_ms:float -> size:int -> unit -> Edge.detector
(** Analytic shortcut: the highest-quality detector whose modelled duration
    (plus read/duplicate overhead) fits within the deadline; falls back to
    the fastest when none fits.  Used to cross-check {!run} and to print
    the deadline sweep of the benchmark harness. *)
